/**
 * @file
 * Shared calibration statistics for one layer's quantized candidates.
 *
 * autoSelect races up to five quantized backends per layer (NCHW
 * int-winograd F2/F4, blocked int-winograd F2/F4, im2col-int8), and
 * each one used to recalibrate from scratch on the same calibration
 * set: an abs-max pass, a fake-quantization pass, and a Winograd-tap
 * maxima pass per IntWinogradConv build — ~13 passes per layer where
 * 4 suffice. A CalibrationCache memoizes each statistic the first
 * time any candidate asks for it; every later candidate reuses the
 * exact same result, so cached and uncached builds are bit-identical.
 *
 * Every *computed* pass increments the process-wide
 * `quant.calibration_passes` counter (obs::Registry::global()), which
 * is how tests prove the sharing: a quantized autoSelect build with
 * the cache performs 4 passes per layer instead of 13.
 *
 * Not thread-safe: a cache belongs to one session build's layer loop,
 * which prepares candidates sequentially.
 */

#ifndef TWQ_QUANT_CALIBRATION_HH
#define TWQ_QUANT_CALIBRATION_HH

#include <map>
#include <tuple>
#include <vector>

#include "quant/quantizer.hh"
#include "quant/scales.hh"
#include "tensor/tensor.hh"
#include "winograd/matrices.hh"

namespace twq
{

class CalibrationCache
{
  public:
    /** `calibration` must outlive the cache (the session's calSet). */
    explicit CalibrationCache(const std::vector<TensorD> *calibration)
        : calibration_(calibration)
    {}

    CalibrationCache(const CalibrationCache &) = delete;
    CalibrationCache &operator=(const CalibrationCache &) = delete;

    const std::vector<TensorD> &set() const { return *calibration_; }

    /**
     * The spatial-domain abs-max calibrator (MaxCalibrator EMA over
     * the set, exactly as the uncached engines run it). One data
     * pass, memoized.
     */
    const MaxCalibrator &spatial();

    /**
     * The calibration set fake-quantized at (scale, bits) — each
     * value replaced by the double it quantizes to. Memoized per key;
     * all of a layer's candidates share one (scale, bits), so in
     * practice this is a single pass.
     */
    const std::vector<TensorD> &fakeQuantized(double scale, int bits);

    /**
     * inputTapMaxima (|B^T x̂ B| maxima per tap) over
     * fakeQuantized(scale, bits). Memoized per (variant, pad, scale,
     * bits): F2 and F4 candidates each compute theirs once.
     */
    const MatrixD &tapMaxima(WinoVariant variant, std::size_t pad,
                             double scale, int bits);

  private:
    const std::vector<TensorD> *calibration_;
    MaxCalibrator spatialCal_;
    bool spatialDone_ = false;
    std::map<std::pair<double, int>, std::vector<TensorD>> fakeQ_;
    std::map<std::tuple<int, std::size_t, double, int>, MatrixD>
        tapMax_;
};

/**
 * Bump the process-wide `quant.calibration_passes` counter — called
 * by the cache and by the engines' uncached fallback paths, so the
 * counter reflects real data passes either way.
 */
void countCalibrationPass();

} // namespace twq

#endif // TWQ_QUANT_CALIBRATION_HH
