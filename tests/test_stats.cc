/**
 * @file
 * Unit tests for statistics and histogram helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace twq
{
namespace
{

TEST(Stats, EmptySample)
{
    const SampleStats s = computeStats({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SingleValue)
{
    const SampleStats s = computeStats({3.5});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 3.5);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.min, 3.5);
    EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Stats, KnownMoments)
{
    const SampleStats s = computeStats({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Histogram, BinsAndTotals)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.total(), 10u);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.count(b), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, DensitySumsToOne)
{
    Histogram h(-1.0, 1.0, 8);
    for (int i = 0; i < 1000; ++i)
        h.add(-1.0 + 2.0 * i / 1000.0);
    double sum = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b)
        sum += h.density(b);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 3.5);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 1.0, 2);
    for (int i = 0; i < 10; ++i)
        h.add(0.25);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
}

} // namespace
} // namespace twq
