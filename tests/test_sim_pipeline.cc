/**
 * @file
 * Tests for the event-driven pipeline simulation, including the
 * cross-validation against the analytical operator model (the paper
 * holds its event simulator to <= 5% vs RTL; we hold the dynamic
 * model to a similar band vs the analytical bound).
 */

#include <gtest/gtest.h>

#include "sim/pipeline.hh"

namespace twq
{
namespace
{

ConvWorkload
wl(std::size_t b, std::size_t hw, std::size_t cin, std::size_t cout)
{
    ConvWorkload w;
    w.batch = b;
    w.hOut = hw;
    w.wOut = hw;
    w.cin = cin;
    w.cout = cout;
    return w;
}

struct SweepCase
{
    std::size_t b, hw, cin, cout;
    OpKind kind;
};

class PipelineSweep : public ::testing::TestWithParam<SweepCase>
{};

TEST_P(PipelineSweep, DynamicMatchesAnalyticalWithinBand)
{
    const SweepCase c = GetParam();
    AcceleratorConfig cfg;
    const OpPerf perf =
        simulateConv(wl(c.b, c.hw, c.cin, c.cout), c.kind, cfg);
    const PipelineResult dyn = simulatePipeline(perf, cfg, 7);
    // The dynamic model adds fill/drain and jitter, so it is never
    // faster than ~the analytical steady-state bound and at most a
    // modest factor above it.
    EXPECT_GE(dyn.cycles, 0.90 * perf.cycles);
    EXPECT_LE(dyn.cycles, 1.30 * perf.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineSweep,
    ::testing::Values(SweepCase{1, 16, 64, 64, OpKind::Im2col},
                      SweepCase{1, 16, 64, 64, OpKind::WinogradF4},
                      SweepCase{8, 32, 256, 256, OpKind::Im2col},
                      SweepCase{8, 32, 256, 256, OpKind::WinogradF4},
                      SweepCase{8, 32, 256, 256, OpKind::WinogradF2},
                      SweepCase{1, 64, 128, 128, OpKind::WinogradF4},
                      SweepCase{8, 128, 256, 384,
                                OpKind::WinogradF4}),
    [](const auto &info) {
        const SweepCase &c = info.param;
        return std::string(opKindName(c.kind)) + "_b" +
               std::to_string(c.b) + "hw" + std::to_string(c.hw) +
               "c" + std::to_string(c.cin) + "o" +
               std::to_string(c.cout);
    });

TEST(Pipeline, DeterministicForSameSeed)
{
    AcceleratorConfig cfg;
    const OpPerf perf =
        simulateConv(wl(8, 32, 128, 128), OpKind::WinogradF4, cfg);
    const PipelineResult a = simulatePipeline(perf, cfg, 42);
    const PipelineResult b = simulatePipeline(perf, cfg, 42);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
}

TEST(Pipeline, JitterChangesButBarelyMovesTotal)
{
    AcceleratorConfig cfg;
    const OpPerf perf =
        simulateConv(wl(8, 32, 128, 128), OpKind::WinogradF4, cfg);
    const PipelineResult a = simulatePipeline(perf, cfg, 1);
    const PipelineResult b = simulatePipeline(perf, cfg, 2);
    EXPECT_NE(a.cycles, b.cycles);
    EXPECT_NEAR(a.cycles, b.cycles, 0.05 * a.cycles);
}

TEST(Pipeline, BottleneckStageHasHighestUtilization)
{
    AcceleratorConfig cfg;
    // Compute-bound workload: the Cube must be the busiest stage.
    const OpPerf perf =
        simulateConv(wl(8, 64, 256, 256), OpKind::Im2col, cfg);
    const PipelineResult dyn = simulatePipeline(perf, cfg, 3);
    const double cube_util = dyn.utilization(PipeStage::Cube);
    EXPECT_GT(cube_util, 0.8);
    EXPECT_GE(cube_util, dyn.utilization(PipeStage::Xform));
    EXPECT_GE(cube_util, dyn.utilization(PipeStage::Post));
}

TEST(Pipeline, MemoryBoundWorkloadSaturatesDram)
{
    AcceleratorConfig cfg;
    // Weight-transfer-bound workload: Load stage dominates.
    const OpPerf perf =
        simulateConv(wl(1, 16, 512, 512), OpKind::WinogradF4, cfg);
    const PipelineResult dyn = simulatePipeline(perf, cfg, 4);
    EXPECT_GT(dyn.utilization(PipeStage::Load),
              dyn.utilization(PipeStage::Cube));
}

TEST(Pipeline, StallsAppearOnNonBottleneckStages)
{
    AcceleratorConfig cfg;
    const OpPerf perf =
        simulateConv(wl(8, 32, 256, 256), OpKind::WinogradF4, cfg);
    const PipelineResult dyn = simulatePipeline(perf, cfg, 5);
    double total_stall = 0.0;
    for (double s : dyn.stallCycles)
        total_stall += s;
    EXPECT_GT(total_stall, 0.0);
}

TEST(Pipeline, MoreBlocksConvergeToSteadyState)
{
    AcceleratorConfig cfg;
    const OpPerf perf =
        simulateConv(wl(8, 64, 256, 256), OpKind::WinogradF4, cfg);
    const PipelineResult coarse = simulatePipeline(perf, cfg, 6, 4);
    const PipelineResult fine = simulatePipeline(perf, cfg, 6, 256);
    // Finer pipelining overlaps more and never ends up slower.
    EXPECT_LE(fine.cycles, coarse.cycles * 1.001);
}

TEST(Pipeline, BlockCountDefaultsFromCubeOccupancy)
{
    AcceleratorConfig cfg;
    const OpPerf perf =
        simulateConv(wl(8, 32, 256, 256), OpKind::WinogradF4, cfg);
    const PipelineResult dyn = simulatePipeline(perf, cfg, 7);
    EXPECT_GT(dyn.blocks, 1u);
}

} // namespace
} // namespace twq
