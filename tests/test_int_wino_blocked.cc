/**
 * @file
 * Bit-identity of the NCHWc8 blocked integer Winograd pipeline
 * against the tile-at-a-time oracles, across variants, bit widths,
 * quantization granularities, and shapes with odd H/W and C % 8 != 0.
 * The fully integer path (forwardInt8) must match
 * IntWinogradConv::forwardInt8Reference bit for bit — integer sums
 * are order-free, so the blocked re-layout cannot change a single
 * value. The FP dequant path runs the vectorized blocked form (FMA
 * Kronecker row passes), so like the FP blocked pipeline it is
 * tolerance-equal to the NCHW engine. Also covers the widening
 * layout kernels (tap GEMM, integer kron, requantization narrowing)
 * against their scalar references, and sharded == serial bit-identity
 * for the blocked int8 tap GEMM.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>

#include "common/rng.hh"
#include "layout/kernels.hh"
#include "quant/int_wino_blocked.hh"
#include "quant/quantizer.hh"
#include "runtime/thread_pool.hh"

namespace twq
{
namespace
{

TensorD
randomTensor(const Shape &shape, std::uint64_t seed)
{
    TensorD t(shape);
    Rng rng(seed);
    rng.fillNormal(t.storage(), 0.0, 1.0);
    return t;
}

struct Case
{
    WinoVariant variant;
    int winogradBits;
    QuantGranularity granularity;
    bool pow2;
    Shape input;        ///< NCHW logical input
    std::size_t cout;
};

class BlockedIntWino : public ::testing::TestWithParam<Case>
{
  protected:
    IntWinogradConfig
    makeConfig() const
    {
        const Case &c = GetParam();
        IntWinogradConfig cfg;
        cfg.variant = c.variant;
        cfg.winogradBits = c.winogradBits;
        cfg.granularity = c.granularity;
        cfg.pow2Scales = c.pow2;
        return cfg;
    }
};

TEST_P(BlockedIntWino, ForwardMatchesNchwPipeline)
{
    const Case &c = GetParam();
    const IntWinogradConfig cfg = makeConfig();
    const TensorD w = randomTensor({c.cout, c.input[1], 3, 3}, 1000);
    const std::vector<TensorD> cal{randomTensor(c.input, 1001)};
    const IntWinogradConv conv(w, cal, cfg);
    const BlockedIntWinograd blk(conv);
    EXPECT_EQ(blk.cout(), conv.cout());
    EXPECT_EQ(blk.cinb(), layoutBlocks(conv.cin()));

    const TensorD x = randomTensor(c.input, 1002);
    TensorD xb(blockedShape(x.shape()));
    nchwToBlocked(x, xb);

    const TensorD ref = conv.forward(x);
    const TensorD outBlocked = blk.forward(xb);
    TensorD out(ref.shape());
    blockedToNchw(outBlocked, out);
    for (std::size_t i = 0; i < ref.numel(); ++i)
        ASSERT_NEAR(out[i], ref[i],
                    1e-9 * (std::abs(ref[i]) + 1.0))
            << "element " << i;

    // Padded output lanes must be exact zeros, or reused arena slots
    // would leak stale values across calls.
    const std::size_t hw = outBlocked.dim(2) * outBlocked.dim(3);
    for (std::size_t in = 0; in < outBlocked.dim(0); ++in)
        for (std::size_t co = 0; co < outBlocked.dim(1); ++co)
            for (std::size_t l = 0; l < kLayoutBlock; ++l) {
                if (co * kLayoutBlock + l < blk.cout())
                    continue;
                const double *plane =
                    outBlocked.data() +
                    (in * outBlocked.dim(1) + co) * hw * kLayoutBlock;
                for (std::size_t i = 0; i < hw; ++i)
                    ASSERT_EQ(plane[i * kLayoutBlock + l], 0.0);
            }
}

TEST_P(BlockedIntWino, ForwardInt8BitIdenticalToReference)
{
    const Case &c = GetParam();
    if (!c.pow2)
        GTEST_SKIP() << "forwardInt8 requires power-of-two scales";
    const IntWinogradConfig cfg = makeConfig();
    const TensorD w = randomTensor({c.cout, c.input[1], 3, 3}, 2000);
    const std::vector<TensorD> cal{randomTensor(c.input, 2001)};
    const IntWinogradConv conv(w, cal, cfg);
    const BlockedIntWinograd blk(conv);

    const TensorD x = randomTensor(c.input, 2002);
    TensorD xb(blockedShape(x.shape()));
    nchwToBlocked(x, xb);
    for (const bool relu : {false, true}) {
        double s_blk = 0.0, s_ref = 0.0;
        const TensorI8 blocked = blk.forwardInt8(xb, &s_blk, relu);
        const TensorI8 ref =
            conv.forwardInt8Reference(x, &s_ref, relu);
        EXPECT_EQ(s_blk, s_ref);
        TensorI8 out(ref.shape());
        blockedToNchw(blocked, out);
        for (std::size_t i = 0; i < ref.numel(); ++i)
            ASSERT_EQ(out[i], ref[i])
                << "element " << i << " relu=" << relu;
    }
}

TEST_P(BlockedIntWino, ReusedBuffersAreStableAcrossBatchChanges)
{
    const Case &c = GetParam();
    const IntWinogradConfig cfg = makeConfig();
    const TensorD w = randomTensor({c.cout, c.input[1], 3, 3}, 3000);
    const std::vector<TensorD> cal{randomTensor(c.input, 3001)};
    const IntWinogradConv conv(w, cal, cfg);
    const BlockedIntWinograd blk(conv);

    TensorI32 xq, V, U32, M;
    TensorI16 U16;
    TensorI8 U8;
    TensorD Md, Y;
    Shape big = c.input;
    big[0] *= 2;
    const TensorD x1 = randomTensor(big, 3002);
    const TensorD x2 = randomTensor(c.input, 3003);
    for (const TensorD *x : {&x1, &x2, &x1}) {
        TensorD xb(blockedShape(x->shape()));
        nchwToBlocked(*x, xb);
        const ConvParams p{3, 1, cfg.pad};
        TensorD out({x->dim(0), blk.coutb(), p.outSize(x->dim(2)),
                     p.outSize(x->dim(3)), kLayoutBlock});
        blk.forwardInto(xb, xq, V, U32, U16, U8, M, Md, Y, out);
        const TensorD expect = blk.forward(xb);
        ASSERT_EQ(out.shape(), expect.shape());
        for (std::size_t i = 0; i < out.numel(); ++i)
            ASSERT_EQ(out[i], expect[i]);
    }
}

TEST_P(BlockedIntWino, ShardedTapGemmIsBitIdenticalToSerial)
{
    const Case &c = GetParam();
    const IntWinogradConfig cfg = makeConfig();
    const TensorD w = randomTensor({c.cout, c.input[1], 3, 3}, 4000);
    const std::vector<TensorD> cal{randomTensor(c.input, 4001)};
    const IntWinogradConv conv(w, cal, cfg);
    const BlockedIntWinograd blk(conv);

    Shape big = c.input;
    big[0] = 3; // enough tiles for the P-sharded grid to engage
    const TensorD x = randomTensor(big, 4002);
    TensorD xb(blockedShape(x.shape()));
    nchwToBlocked(x, xb);

    ThreadPool pool(5);
    PoolRunner runner(pool, pool.size());
    TensorI32 xq, V, U32, M;
    TensorI16 U16;
    TensorI8 U8;
    TensorD Md, Y;
    const ConvParams p{3, 1, cfg.pad};
    TensorD serial({big[0], blk.coutb(), p.outSize(big[2]),
                    p.outSize(big[3]), kLayoutBlock});
    TensorD parallel(serial.shape());
    blk.forwardInto(xb, xq, V, U32, U16, U8, M, Md, Y, serial);
    blk.forwardInto(xb, xq, V, U32, U16, U8, M, Md, Y, parallel,
                    &runner);
    pool.shutdown();
    EXPECT_TRUE(parallel == serial)
        << "sharded blocked int8 pipeline differs from serial";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BlockedIntWino,
    ::testing::Values(
        // The paper's headline configuration: F4 tap-wise, 8-bit.
        Case{WinoVariant::F4, 8, QuantGranularity::TapWise, true,
             {2, 3, 8, 8}, 5},
        // 10-bit Winograd domain (the accuracy-recovery setting),
        // C % 8 != 0 on both sides, odd H/W.
        Case{WinoVariant::F4, 10, QuantGranularity::TapWise, true,
             {1, 12, 9, 7}, 9},
        // Layer-wise granularity (the "traditional" baseline).
        Case{WinoVariant::F4, 8, QuantGranularity::LayerWise, true,
             {1, 2, 6, 6}, 4},
        Case{WinoVariant::F2, 8, QuantGranularity::LayerWise, true,
             {2, 2, 5, 9}, 3},
        // F2 tap-wise and channel granularities; full blocks too.
        Case{WinoVariant::F2, 8, QuantGranularity::TapWise, true,
             {1, 16, 8, 8}, 8},
        Case{WinoVariant::F2, 10, QuantGranularity::ChannelWise, true,
             {1, 3, 7, 7}, 4},
        Case{WinoVariant::F4, 8, QuantGranularity::ChannelTapWise,
             true, {1, 2, 10, 6}, 4},
        // Non-power-of-two scales exercise the round(x/s) rescale.
        Case{WinoVariant::F4, 8, QuantGranularity::TapWise, false,
             {1, 3, 8, 8}, 5},
        Case{WinoVariant::F2, 10, QuantGranularity::TapWise, false,
             {2, 2, 7, 5}, 3}),
    [](const ::testing::TestParamInfo<Case> &info) {
        const Case &c = info.param;
        std::string name = winoName(c.variant);
        name += "_";
        name += granularityName(c.granularity);
        name += "_";
        name += std::to_string(c.winogradBits) + "b";
        name += c.pow2 ? "_pow2" : "_free";
        name += "_c" + std::to_string(c.input[1]);
        for (char &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

// ------------------------------------------- layout kernel oracles

TEST(BlockedIntKernels, TapGemmI16MatchesScalarReference)
{
    Rng rng(71);
    const std::size_t coutb = 3, cinb = 2, P = 37;
    const std::size_t cinp = cinb * kLayoutBlock;
    std::vector<std::int16_t> w(coutb * cinp * kLayoutBlock);
    std::vector<std::int16_t> u(cinb * P * kLayoutBlock);
    for (auto &v : w)
        v = static_cast<std::int16_t>(rng.uniformInt(-512, 511));
    for (auto &v : u)
        v = static_cast<std::int16_t>(rng.uniformInt(-512, 511));
    std::vector<std::int32_t> ref(coutb * P * kLayoutBlock, -1);
    std::vector<std::int32_t> got(coutb * P * kLayoutBlock, -2);
    layout::scalarTapGemmI16(w.data(), u.data(), ref.data(), coutb,
                             cinb, P, 0, P);
    // Whole width through the dispatched kernel...
    layout::kernels().tapGemmI16(w.data(), u.data(), got.data(),
                                 coutb, cinb, P, 0, P);
    EXPECT_EQ(got, ref);
    // ...and as uneven column blocks (the P-shard seam).
    std::fill(got.begin(), got.end(), -3);
    layout::kernels().tapGemmI16(w.data(), u.data(), got.data(),
                                 coutb, cinb, P, 0, 5);
    layout::kernels().tapGemmI16(w.data(), u.data(), got.data(),
                                 coutb, cinb, P, 5, 24);
    layout::kernels().tapGemmI16(w.data(), u.data(), got.data(),
                                 coutb, cinb, P, 29, P - 29);
    EXPECT_EQ(got, ref);
}

TEST(BlockedIntKernels, RescaleI16MatchesScalarReference)
{
    Rng rng(72);
    for (const int bits : {8, 10}) {
        for (const int shift : {0, 1, 3, 7}) {
            std::vector<std::int32_t> src(101);
            for (auto &v : src)
                v = static_cast<std::int32_t>(
                    rng.uniformInt(-60000, 60000));
            // Include exact halfway points and the rails.
            src[0] = 0;
            src[1] = (1 << shift) / 2;
            src[2] = -(1 << shift) / 2;
            src[3] = std::numeric_limits<std::int32_t>::max() / 2;
            src[4] = std::numeric_limits<std::int32_t>::min() / 2;
            std::vector<std::int16_t> ref(src.size());
            std::vector<std::int16_t> got(src.size());
            layout::scalarRescaleI16(src.data(), ref.data(),
                                     src.size(), shift, bits);
            layout::kernels().rescaleI16(src.data(), got.data(),
                                         src.size(), shift, bits);
            EXPECT_EQ(got, ref)
                << "shift=" << shift << " bits=" << bits;
        }
    }
}

TEST(BlockedIntKernels, TapGemmU8MatchesScalarReference)
{
    if (!layout::kernels().tapGemmU8)
        GTEST_SKIP() << "no u8 tap kernel on this host (needs VNNI)";
    Rng rng(74);
    const std::size_t coutb = 2, cinb = 3, P = 29;
    const std::size_t cinp = cinb * kLayoutBlock;
    std::vector<std::int8_t> w(coutb * cinp * kLayoutBlock);
    std::vector<std::uint8_t> u(cinb * P * kLayoutBlock);
    std::vector<std::int32_t> comp(coutb * kLayoutBlock);
    for (auto &v : w)
        v = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    for (auto &v : u)
        v = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    for (auto &v : comp)
        v = static_cast<std::int32_t>(rng.uniformInt(-100000, 100000));
    std::vector<std::int32_t> ref(coutb * P * kLayoutBlock, -1);
    std::vector<std::int32_t> got(coutb * P * kLayoutBlock, -2);
    layout::scalarTapGemmU8(w.data(), u.data(), comp.data(),
                            ref.data(), coutb, cinb, P, 0, P);
    layout::kernels().tapGemmU8(w.data(), u.data(), comp.data(),
                                got.data(), coutb, cinb, P, 0, P);
    EXPECT_EQ(got, ref);
    // Uneven column blocks (the P-shard seam).
    std::fill(got.begin(), got.end(), -3);
    layout::kernels().tapGemmU8(w.data(), u.data(), comp.data(),
                                got.data(), coutb, cinb, P, 0, 7);
    layout::kernels().tapGemmU8(w.data(), u.data(), comp.data(),
                                got.data(), coutb, cinb, P, 7,
                                P - 7);
    EXPECT_EQ(got, ref);
}

TEST(BlockedIntKernels, RescaleU8MatchesScalarReference)
{
    Rng rng(75);
    for (const int shift : {0, 2, 6}) {
        std::vector<std::int32_t> src(77);
        for (auto &v : src)
            v = static_cast<std::int32_t>(
                rng.uniformInt(-60000, 60000));
        src[0] = 0;
        src[1] = (1 << shift) / 2;
        src[2] = -(1 << shift) / 2;
        std::vector<std::uint8_t> ref(src.size());
        std::vector<std::uint8_t> got(src.size());
        layout::scalarRescaleU8(src.data(), ref.data(), src.size(),
                                shift, 8);
        layout::kernels().rescaleU8(src.data(), got.data(),
                                    src.size(), shift, 8);
        EXPECT_EQ(got, ref) << "shift=" << shift;
    }
}

TEST(BlockedIntKernels, ScaleI32F64MatchesScalarReference)
{
    Rng rng(76);
    const std::size_t tiles = 23;
    std::vector<std::int32_t> src(tiles * kLayoutBlock);
    double scale8[kLayoutBlock];
    for (auto &v : src)
        v = static_cast<std::int32_t>(rng.uniformInt(-100000, 100000));
    for (double &s : scale8)
        s = rng.normal();
    std::vector<double> ref(src.size()), got(src.size());
    layout::scalarScaleI32F64(src.data(), scale8, ref.data(), tiles);
    layout::kernels().scaleI32F64(src.data(), scale8, got.data(),
                                  tiles);
    EXPECT_EQ(got, ref);
}

TEST(BlockedIntKernels, QuantizeI32MatchesScalarQuantize)
{
    Rng rng(77);
    const double scale = 0.03125; // power of two: the kernel's domain
    std::vector<double> src(301);
    for (auto &v : src)
        v = rng.normal(0.0, 2.0);
    src[0] = 0.0;
    src[1] = 1e9;   // clamps high
    src[2] = -1e9;  // clamps low
    src[3] = 0.5 * scale;
    src[4] = -0.5 * scale;
    for (const int bits : {8, 10}) {
        std::vector<std::int32_t> got(src.size());
        layout::kernels().quantizeI32(
            src.data(), 1.0 / scale,
            static_cast<double>(quantMin(bits)),
            static_cast<double>(quantMax(bits)), got.data(),
            src.size());
        for (std::size_t i = 0; i < src.size(); ++i)
            ASSERT_EQ(got[i], static_cast<std::int32_t>(quantize(
                                  src[i], scale, bits)))
                << "element " << i << " bits=" << bits;
    }
}

TEST(BlockedIntKernels, KronI32MatchesScalarReference)
{
    Rng rng(73);
    for (const WinoVariant v : {WinoVariant::F2, WinoVariant::F4}) {
        const WinoKronPlan<std::int32_t> &plan =
            winoInputKron<std::int32_t>(v);
        const std::size_t len = 61; // odd: exercises the vector tail
        std::vector<std::int32_t> x(plan.rowsIn * len);
        for (auto &val : x)
            val = static_cast<std::int32_t>(
                rng.uniformInt(-1000, 1000));
        std::vector<std::int32_t> ref(plan.rowsOut * len, -1);
        std::vector<std::int32_t> got(plan.rowsOut * len, -2);
        applyKron(plan, x.data(), len, ref.data());
        layout::kernels().kronI32(plan, x.data(), len, got.data());
        EXPECT_EQ(got, ref) << winoName(v);
    }
}

} // namespace
} // namespace twq
