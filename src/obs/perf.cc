#include "obs/perf.hh"

#ifndef TWQ_NO_OBS

#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace twq::obs
{

namespace
{

#if defined(__linux__)

/**
 * One thread's counter group: the cycles leader plus three siblings,
 * opened lazily on first use and held for the thread's lifetime so a
 * PerfScope costs ioctls, not opens. PERF_FORMAT_GROUP +
 * PERF_FORMAT_ID makes one read(2) of the leader return every
 * sibling from the same atomic sample.
 */
struct PerfGroup
{
    int leader = -1;
    int fds[4] = {-1, -1, -1, -1};
    bool tried = false;

    ~PerfGroup()
    {
        for (int fd : fds)
            if (fd >= 0)
                ::close(fd);
    }

    static int
    openOne(std::uint32_t type, std::uint64_t config, int group)
    {
        perf_event_attr attr{};
        attr.size = sizeof(attr);
        attr.type = type;
        attr.config = config;
        attr.disabled = group < 0 ? 1 : 0; // leader starts disabled
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.read_format = PERF_FORMAT_GROUP;
        return static_cast<int>(::syscall(SYS_perf_event_open, &attr,
                                          0 /* this thread */,
                                          -1 /* any cpu */, group, 0));
    }

    bool
    open()
    {
        if (tried)
            return leader >= 0;
        tried = true;
        fds[0] = openOne(PERF_TYPE_HARDWARE,
                         PERF_COUNT_HW_CPU_CYCLES, -1);
        if (fds[0] < 0)
            return false;
        fds[1] = openOne(PERF_TYPE_HARDWARE,
                         PERF_COUNT_HW_INSTRUCTIONS, fds[0]);
        fds[2] = openOne(PERF_TYPE_HARDWARE,
                         PERF_COUNT_HW_CACHE_REFERENCES, fds[0]);
        fds[3] = openOne(PERF_TYPE_HARDWARE,
                         PERF_COUNT_HW_CACHE_MISSES, fds[0]);
        if (fds[1] < 0 || fds[2] < 0 || fds[3] < 0) {
            // All four or nothing: a partial group would skew IPC
            // and miss rates against each other.
            for (int &fd : fds) {
                if (fd >= 0)
                    ::close(fd);
                fd = -1;
            }
            return false;
        }
        leader = fds[0];
        return true;
    }

    bool
    start()
    {
        if (!open())
            return false;
        if (::ioctl(leader, PERF_EVENT_IOC_RESET,
                    PERF_IOC_FLAG_GROUP) < 0)
            return false;
        return ::ioctl(leader, PERF_EVENT_IOC_ENABLE,
                       PERF_IOC_FLAG_GROUP) >= 0;
    }

    PerfCounters
    stop()
    {
        PerfCounters c;
        if (leader < 0)
            return c;
        ::ioctl(leader, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
        // PERF_FORMAT_GROUP layout: u64 nr, then one u64 per member
        // in open order.
        struct
        {
            std::uint64_t nr;
            std::uint64_t values[4];
        } sample{};
        const ssize_t n =
            ::read(leader, &sample, sizeof(sample));
        if (n != sizeof(sample) || sample.nr != 4)
            return c;
        c.cycles = sample.values[0];
        c.instructions = sample.values[1];
        c.cacheRefs = sample.values[2];
        c.cacheMisses = sample.values[3];
        c.valid = true;
        return c;
    }
};

thread_local PerfGroup tlsGroup;

/** Depth guard: only the outermost PerfScope on a thread counts. */
thread_local int tlsScopeDepth = 0;

bool
probeAvailability()
{
    if (const char *env = std::getenv("TWQ_NO_PERF");
        env && env[0] != '\0' && std::strcmp(env, "0") != 0)
        return false;
    PerfGroup probe;
    return probe.open();
}

#else // !__linux__

bool
probeAvailability()
{
    return false;
}

#endif // __linux__

} // namespace

bool
perfAvailable()
{
    static const bool avail = probeAvailability();
    return avail;
}

#if defined(__linux__)

PerfScope::PerfScope()
{
    if (!perfAvailable())
        return;
    counted_ = true;
    if (tlsScopeDepth++ == 0)
        active_ = tlsGroup.start();
}

PerfScope::~PerfScope()
{
    stop();
}

PerfCounters
PerfScope::stop()
{
    // Each scope releases its depth slot exactly once, whether it
    // was the counting outermost scope or an inert nested one, and
    // whether stop() is called explicitly, by the destructor, or
    // both.
    if (!counted_)
        return {};
    counted_ = false;
    --tlsScopeDepth;
    if (!active_)
        return {};
    active_ = false;
    return tlsGroup.stop();
}

#else // !__linux__

PerfScope::PerfScope() = default;

PerfScope::~PerfScope() = default;

PerfCounters
PerfScope::stop()
{
    return {};
}

#endif // __linux__

PerfStageCollector &
PerfStageCollector::global()
{
    static PerfStageCollector c;
    return c;
}

void
PerfStageCollector::enable()
{
    on_.store(true, std::memory_order_relaxed);
}

void
PerfStageCollector::disable()
{
    on_.store(false, std::memory_order_relaxed);
}

std::map<std::string, PerfStageTotal>
PerfStageCollector::totals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totals_;
}

void
PerfStageCollector::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    totals_.clear();
}

void
PerfStageCollector::add(const char *stage, const PerfCounters &c)
{
    if (!c.valid)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    PerfStageTotal &t = totals_[stage];
    ++t.count;
    t.counters += c;
}

void
StageCounters::begin(const char *stage)
{
    stage_ = stage;
    scope_ = ::new (static_cast<void *>(storage_)) PerfScope();
}

void
StageCounters::end()
{
    const PerfCounters c = scope_->stop();
    scope_->~PerfScope();
    scope_ = nullptr;
    PerfStageCollector::global().add(stage_, c);
}

} // namespace twq::obs

#endif // TWQ_NO_OBS
