/**
 * @file
 * Tests for the NCHWc8 blocked activation-layout subsystem
 * (src/layout/): layout round-trips, blocked tile gather/scatter-add
 * against their NCHW counterparts, the c-blocked per-tap GEMM, the
 * full blocked Winograd pipeline against the NCHW tiled path, and the
 * blocked-input im2col entry point.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "layout/kernels.hh"
#include "layout/layout.hh"
#include "layout/wino_blocked.hh"
#include "quant/quantizer.hh"
#include "tensor/im2col.hh"
#include "winograd/tiled.hh"

namespace twq
{
namespace
{

TensorD
randomTensor(const Shape &shape, std::uint64_t seed)
{
    TensorD t(shape);
    Rng rng(seed);
    rng.fillNormal(t.storage(), 0.0, 1.0);
    return t;
}

/** Re-block a [tt, C, P] tile buffer to [tt, Cb, P, 8] (tail zero). */
TensorD
blockTiles(const TensorD &v)
{
    const std::size_t tt = v.dim(0);
    const std::size_t c = v.dim(1);
    const std::size_t p = v.dim(2);
    const std::size_t cb = layoutBlocks(c);
    TensorD out({tt, cb, p, kLayoutBlock});
    for (std::size_t k = 0; k < tt; ++k)
        for (std::size_t ic = 0; ic < c; ++ic)
            for (std::size_t i = 0; i < p; ++i)
                out.at(k, ic / kLayoutBlock, i, ic % kLayoutBlock) =
                    v.at(k, ic, i);
    return out;
}

TEST(Layout, VocabularyAndShapes)
{
    EXPECT_STREQ(actLayoutName(ActLayout::NCHW), "nchw");
    EXPECT_STREQ(actLayoutName(ActLayout::NCHWc8), "nchwc8");
    EXPECT_EQ(layoutBlocks(1), 1u);
    EXPECT_EQ(layoutBlocks(8), 1u);
    EXPECT_EQ(layoutBlocks(9), 2u);
    const Shape nchw{2, 13, 5, 7};
    EXPECT_EQ(blockedShape(nchw), (Shape{2, 2, 5, 7, 8}));
    const LayoutDesc blocked = LayoutDesc::blocked(nchw);
    EXPECT_EQ(blocked.physical(), blockedShape(nchw));
    EXPECT_EQ(LayoutDesc::nchw(nchw).physical(), nchw);
}

TEST(Layout, RoundTripIsBitExact)
{
    // Odd H/W, C % 8 != 0, C < 8, C multiple of 8, batch > 1.
    const Shape shapes[] = {{1, 3, 4, 4},
                            {2, 13, 9, 7},
                            {3, 8, 5, 5},
                            {1, 16, 1, 1},
                            {2, 1, 3, 2}};
    std::uint64_t seed = 10;
    for (const Shape &shape : shapes) {
        const TensorD x = randomTensor(shape, seed++);
        TensorD xb(blockedShape(shape));
        nchwToBlocked(x, xb);
        TensorD back(shape);
        blockedToNchw(xb, back);
        EXPECT_TRUE(back == x) << "round trip differs";
    }
}

TEST(Layout, TailLanesAreZeroFilled)
{
    const TensorD x = randomTensor({2, 11, 3, 5}, 99);
    TensorD xb(blockedShape(x.shape()));
    // Poison the destination: conversion must overwrite every lane.
    xb.fill(123.0);
    nchwToBlocked(x, xb);
    const std::size_t cb = xb.dim(1);
    for (std::size_t n = 0; n < xb.dim(0); ++n)
        for (std::size_t y = 0; y < xb.dim(2); ++y)
            for (std::size_t z = 0; z < xb.dim(3); ++z)
                for (std::size_t l = 3; l < kLayoutBlock; ++l)
                    EXPECT_EQ(xb.at(n, cb - 1, y, z, l), 0.0)
                        << "tail lane " << l << " not zeroed";
}

class BlockedWinograd : public ::testing::TestWithParam<WinoVariant>
{};

TEST_P(BlockedWinograd, GatherMatchesNchwGatherLanewise)
{
    const WinoVariant v = GetParam();
    const Shape shapes[] = {{2, 11, 9, 7}, {1, 8, 4, 4}, {3, 4, 5, 6}};
    std::uint64_t seed = 200;
    for (const Shape &shape : shapes) {
        const TensorD x = randomTensor(shape, seed++);
        TensorD vRef;
        winogradGatherTiles(x, v, 1, vRef);

        TensorD xb(blockedShape(shape));
        nchwToBlocked(x, xb);
        TensorD vBlk;
        winogradGatherTilesBlocked(xb, v, 1, vBlk);

        ASSERT_EQ(vBlk.shape(),
                  (Shape{vRef.dim(0), layoutBlocks(shape[1]),
                         vRef.dim(2), kLayoutBlock}));
        for (std::size_t k = 0; k < vRef.dim(0); ++k)
            for (std::size_t ic = 0; ic < shape[1]; ++ic)
                for (std::size_t p = 0; p < vRef.dim(2); ++p)
                    ASSERT_EQ(vBlk.at(k, ic / kLayoutBlock, p,
                                      ic % kLayoutBlock),
                              vRef.at(k, ic, p))
                        << "tap " << k << " channel " << ic << " tile "
                        << p;
        // Tail lanes gathered from the zero-padded activation stay 0.
        const std::size_t cb = layoutBlocks(shape[1]);
        for (std::size_t k = 0; k < vBlk.dim(0); ++k)
            for (std::size_t p = 0; p < vBlk.dim(2); ++p)
                for (std::size_t l = shape[1] % kLayoutBlock;
                     l != 0 && l < kLayoutBlock; ++l)
                    ASSERT_EQ(vBlk.at(k, cb - 1, p, l), 0.0);
    }
}

TEST_P(BlockedWinograd, ScatterAddMatchesNchwScatterAdd)
{
    const WinoVariant v = GetParam();
    const Shape shape{2, 5, 7, 9};
    const WinoDims d = winoDims(shape, v, 1);
    const TensorD tiles = randomTensor(
        {d.t * d.t, shape[1], d.tiles}, 300);

    TensorD gradRef(shape);
    winogradScatterAddTiles(tiles, v, 1, gradRef);

    TensorD gradBlk(blockedShape(shape));
    winogradScatterAddTilesBlocked(blockTiles(tiles), v, 1, gradBlk);

    TensorD gradFlat(shape);
    blockedToNchw(gradBlk, gradFlat);
    // Same additions in the same per-element order: bit-exact.
    EXPECT_TRUE(gradFlat == gradRef);
}

TEST_P(BlockedWinograd, TapGemmMatchesNchwTapGemm)
{
    const WinoVariant v = GetParam();
    const WinoSpec spec = winoSpec(v);
    const std::size_t tt = spec.t * spec.t;
    const std::size_t cin = 11, cout = 13, p = 21;

    WinogradTapWeights<double> w;
    w.variant = v;
    w.cout = cout;
    w.cin = cin;
    w.taps = randomTensor({tt * cout * cin}, 400).storage();
    const TensorD u = randomTensor({tt, cin, p}, 401);

    TensorD mRef;
    winogradTapGemm(w, u, mRef);

    TensorD mBlk;
    winogradTapGemmBlocked(blockedTapWeights(w), blockTiles(u), mBlk);

    ASSERT_EQ(mBlk.shape(), (Shape{tt, layoutBlocks(cout), p,
                                   kLayoutBlock}));
    for (std::size_t k = 0; k < tt; ++k)
        for (std::size_t oc = 0; oc < cout; ++oc)
            for (std::size_t i = 0; i < p; ++i)
                ASSERT_NEAR(mBlk.at(k, oc / kLayoutBlock, i,
                                    oc % kLayoutBlock),
                            mRef.at(k, oc, i), 1e-9)
                    << "tap " << k << " oc " << oc << " tile " << i;
    // Padded output lanes come from zero weight rows.
    for (std::size_t k = 0; k < tt; ++k)
        for (std::size_t i = 0; i < p; ++i)
            for (std::size_t l = cout % kLayoutBlock;
                 l != 0 && l < kLayoutBlock; ++l)
                ASSERT_EQ(mBlk.at(k, layoutBlocks(cout) - 1, i, l),
                          0.0);
}

TEST_P(BlockedWinograd, ConvolutionMatchesNchwTiledPath)
{
    const WinoVariant v = GetParam();
    // C % 8 != 0, odd spatial, batch > 1, and an exact-block case.
    const Shape shapes[] = {
        {1, 3, 8, 8}, {2, 11, 5, 7}, {3, 8, 9, 6}, {1, 16, 6, 6}};
    std::uint64_t seed = 500;
    for (const Shape &shape : shapes) {
        const TensorD x = randomTensor(shape, seed++);
        const TensorD w = randomTensor({10, shape[1], 3, 3}, seed++);
        const WinogradTapWeights<double> taps =
            winogradPrepareTapWeights(w, v);
        const TensorD ref = conv2dWinogradTiled(x, taps, 1);

        TensorD xb(blockedShape(shape));
        nchwToBlocked(x, xb);
        const TensorD yb =
            conv2dWinogradBlocked(xb, blockedTapWeights(taps), 1);
        TensorD y(ref.shape());
        blockedToNchw(yb, y);

        // Bit-identical where both paths contract identically (FMA
        // hardware); tolerance-equal where the NCHW transforms were
        // compiled without contraction.
        for (std::size_t i = 0; i < y.numel(); ++i)
            ASSERT_NEAR(y[i], ref[i], 1e-9)
                << winoName(v) << " element " << i;
    }
}

TEST_P(BlockedWinograd, BatchedIsBitIdenticalToSequential)
{
    const WinoVariant v = GetParam();
    const Shape single{1, 11, 9, 7};
    const TensorD w = randomTensor({9, single[1], 3, 3}, 600);
    const BlockedTapWeights bw =
        blockedTapWeights(winogradPrepareTapWeights(w, v));

    constexpr std::size_t kBatch = 3;
    TensorD batch({kBatch, single[1], single[2], single[3]});
    std::vector<TensorD> singles;
    for (std::size_t b = 0; b < kBatch; ++b) {
        singles.push_back(randomTensor(single, 610 + b));
        std::copy(singles[b].data(),
                  singles[b].data() + singles[b].numel(),
                  batch.data() + b * singles[b].numel());
    }

    TensorD batchB(blockedShape(batch.shape()));
    nchwToBlocked(batch, batchB);
    const TensorD yBatch = conv2dWinogradBlocked(batchB, bw, 1);

    const std::size_t perImage = yBatch.numel() / kBatch;
    for (std::size_t b = 0; b < kBatch; ++b) {
        TensorD xb(blockedShape(single));
        nchwToBlocked(singles[b], xb);
        const TensorD yOne = conv2dWinogradBlocked(xb, bw, 1);
        ASSERT_EQ(yOne.numel(), perImage);
        for (std::size_t i = 0; i < perImage; ++i)
            ASSERT_EQ(yOne[i], yBatch[b * perImage + i])
                << "batched != sequential at image " << b
                << " element " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, BlockedWinograd,
                         ::testing::Values(WinoVariant::F2,
                                           WinoVariant::F4,
                                           WinoVariant::F6),
                         [](const auto &info) {
                             return std::string(winoName(info.param));
                         });

TEST(LayoutKernelsTest, QuantizeI8MatchesScalarQuantizer)
{
    // The vectorized activation-quantize of the int8 im2col engine:
    // for a power-of-two scale (exact reciprocal) the kernel must be
    // bit-identical to quantize() from quant/quantizer.hh, including
    // ties (nearbyint, round-half-even) and the clamp edges.
    const double scale = 0.25;
    const double inv = 1.0 / scale;
    constexpr std::size_t kN = 1037; // odd: exercises vector tails
    std::vector<double> src(kN);
    Rng rng(808);
    rng.fillNormal(src, 0.0, 40.0); // many values past the clamp
    // Exact ties and edges.
    src[0] = 0.125;   // 0.5 after *inv: ties to even 0
    src[1] = 0.375;   // 1.5 after *inv: ties to even 2
    src[2] = -0.125;  // -0.5: ties to 0
    src[3] = 1000.0;  // clamps to quantMax
    src[4] = -1000.0; // clamps to quantMin
    src[5] = -0.0;
    std::vector<std::int8_t> fast(kN), ref(kN);
    layout::kernels().quantizeI8(
        src.data(), inv, static_cast<double>(quantMin(8)),
        static_cast<double>(quantMax(8)), fast.data(), kN);
    for (std::size_t i = 0; i < kN; ++i)
        ref[i] = static_cast<std::int8_t>(quantize(src[i], scale, 8));
    EXPECT_EQ(fast, ref) << "quantizeI8 (" << layout::kernels().name
                         << ") diverges from the scalar quantizer";
}

TEST(Im2colBlocked, MatchesNchwIm2colBitExact)
{
    const Shape shape{2, 13, 6, 5};
    const TensorD x = randomTensor(shape, 700);
    TensorD xb(blockedShape(shape));
    nchwToBlocked(x, xb);

    for (const ConvParams p :
         {ConvParams{3, 1, 1}, ConvParams{3, 2, 1}, ConvParams{1, 1, 0},
          ConvParams{5, 1, 2}}) {
        for (std::size_t n = 0; n < shape[0]; ++n) {
            TensorD colsRef, colsBlk;
            im2colInto(x, n, p, colsRef);
            im2colBlockedInto(xb, shape[1], n, p, colsBlk);
            ASSERT_EQ(colsBlk.shape(), colsRef.shape());
            EXPECT_TRUE(colsBlk == colsRef)
                << "k=" << p.kernel << " s=" << p.stride << " n=" << n;
        }
    }
}

} // namespace
} // namespace twq
