#include "runtime/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "common/logging.hh"
#include "gemm/gemm.hh"
#include "layout/kernels.hh"
#include "layout/wino_blocked.hh"
#include "obs/perf.hh"
#include "obs/trace.hh"
#include "quant/calibration.hh"
#include "quant/int_wino_blocked.hh"
#include "quant/quantizer.hh"
#include "winograd/tiled.hh"

namespace twq
{

namespace
{

/** Per-layer scratch slot names, resolved once at prepare() time. */
ScratchArena::Slot
layerSlot(const char *what, const std::string &layer)
{
    return ScratchArena::resolve(std::string(what) + ":" + layer);
}

/**
 * Validate a fused epilogue against the layer and return its bias
 * (empty = none). Central so every backend enforces the same
 * contract: a bias must carry exactly one addend per output channel.
 */
std::vector<double>
epilogueBias(const Epilogue &e, const ConvLayerDesc &desc)
{
    if (e.bias.empty())
        return {};
    twq_assert(e.bias.size() == desc.cout, "epilogue bias size ",
               e.bias.size(), " != cout ", desc.cout, " on layer ",
               desc.name);
    return e.bias;
}

/** The same bias re-laid per NCHWc8 lane: [coutb*8], tail zero. */
template <typename T>
std::vector<T>
blockedBias(const std::vector<double> &bias)
{
    if (bias.empty())
        return {};
    std::vector<T> b8(layoutBlocks(bias.size()) * kLayoutBlock, T{});
    for (std::size_t i = 0; i < bias.size(); ++i)
        b8[i] = static_cast<T>(bias[i]);
    return b8;
}

// GEMM pack buffers are shape-independent (gemm::packSize() elements),
// so one process-wide slot name per element type serves every layer.
ScratchArena::Slot
packSlotD()
{
    static const ScratchArena::Slot slot =
        ScratchArena::resolve("gemm.pack.d");
    return slot;
}

ScratchArena::Slot
packSlotI64()
{
    static const ScratchArena::Slot slot =
        ScratchArena::resolve("gemm.pack.i64");
    return slot;
}

ScratchArena::Slot
packSlotI8()
{
    static const ScratchArena::Slot slot =
        ScratchArena::resolve("gemm.pack.i8");
    return slot;
}

// ------------------------------------------------------------- im2col

struct Im2colPrepared : PreparedLayer
{
    TensorD wmat; ///< [Cout, Cin*K*K] packed GEMM operand
    ConvParams params;
    ScratchArena::Slot cols = 0; ///< column-buffer slot
    std::vector<double> bias;    ///< fused epilogue; empty = none
    bool relu = false;
};

class Im2colBackend : public ConvBackend
{
  public:
    ConvEngine kind() const override { return ConvEngine::Im2col; }

    bool
    supports(const ConvLayerDesc &) const override
    {
        return true; // the universal fallback
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        auto prep = std::make_shared<Im2colPrepared>();
        prep->wmat = packConvWeights(weights);
        prep->params = build.params;
        prep->cols = layerSlot("im2col.cols", desc.name);
        prep->bias = epilogueBias(build.epilogue, desc);
        prep->relu = build.epilogue.relu;
        return prep;
    }

    Shape
    outputShape(const PreparedLayer &prep,
                const Shape &input) const override
    {
        const auto &p = static_cast<const Im2colPrepared &>(prep);
        return {input[0], p.wmat.dim(0), p.params.outSize(input[2]),
                p.params.outSize(input[3])};
    }

    void
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &scratch, TensorD &out,
        const RunContext &ctx) const override
    {
        const auto &p = static_cast<const Im2colPrepared &>(prep);
        const std::size_t k = p.params.kernel;
        const std::size_t spatial = p.params.outSize(input.dim(2)) *
                                    p.params.outSize(input.dim(3));
        const std::size_t ckk = input.dim(1) * k * k;
        TensorD &cols = scratch.tensor(p.cols, {ckk, spatial});
        const double macs = static_cast<double>(p.wmat.dim(0)) *
                            static_cast<double>(ckk) *
                            static_cast<double>(spatial);
        TWQ_SPAN("im2col.conv");
        TWQ_STAGE_PERF("im2col.conv");
        conv2dIm2colPackedInto(input, p.wmat, p.params, cols, out,
                               ctx.runnerFor(macs), ctx.packs,
                               p.bias.empty() ? nullptr : p.bias.data(),
                               p.relu);
    }
};

// ------------------------------------------------------ FP32 Winograd

struct WinogradFp32Prepared : PreparedLayer
{
    /// Tap-major [t*t][Cout][Cin] weights feeding the per-tap GEMM.
    WinogradTapWeights<double> weights;
    std::size_t pad = 1;
    ScratchArena::Slot tiles = 0;   ///< V raw-tile slot
    ScratchArena::Slot scatter = 0; ///< U buffer slot
    ScratchArena::Slot gemm = 0;    ///< M buffer slot
    ScratchArena::Slot back = 0;    ///< Y back-transform slot
    std::vector<double> bias;       ///< fused epilogue; empty = none
    bool relu = false;
};

class WinogradFp32Backend : public ConvBackend
{
  public:
    ConvEngine kind() const override { return ConvEngine::WinogradFp32; }

    bool
    supports(const ConvLayerDesc &desc) const override
    {
        return desc.winogradEligible();
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        twq_assert(supports(desc),
                   "winograd-fp32 backend on ineligible layer ",
                   desc.name);
        auto prep = std::make_shared<WinogradFp32Prepared>();
        prep->weights =
            winogradPrepareTapWeights(weights, build.variant);
        prep->pad = build.params.pad;
        prep->tiles = layerSlot("wino.V", desc.name);
        prep->scatter = layerSlot("wino.U", desc.name);
        prep->gemm = layerSlot("wino.M", desc.name);
        prep->back = layerSlot("wino.Y", desc.name);
        prep->bias = epilogueBias(build.epilogue, desc);
        prep->relu = build.epilogue.relu;
        return prep;
    }

    Shape
    outputShape(const PreparedLayer &prep,
                const Shape &input) const override
    {
        const auto &p = static_cast<const WinogradFp32Prepared &>(prep);
        const ConvParams cp{3, 1, p.pad};
        return {input[0], p.weights.cout, cp.outSize(input[2]),
                cp.outSize(input[3])};
    }

    void
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &scratch, TensorD &out,
        const RunContext &ctx) const override
    {
        const auto &p = static_cast<const WinogradFp32Prepared &>(prep);
        const WinoDims d =
            winoDims(input.shape(), p.weights.variant, p.pad);
        TensorD &V = scratch.tensor(
            p.tiles, {d.t * d.t, p.weights.cin, d.tiles});
        TensorD &U = scratch.tensor(
            p.scatter, {d.t * d.t, p.weights.cin, d.tiles});
        TensorD &M = scratch.tensor(
            p.gemm, {d.t * d.t, p.weights.cout, d.tiles});
        TensorD &Y = scratch.tensor(
            p.back, {d.m * d.m, p.weights.cout, d.tiles});
        const double macs = static_cast<double>(d.t * d.t) *
                            static_cast<double>(p.weights.cout) *
                            static_cast<double>(p.weights.cin) *
                            static_cast<double>(d.tiles);
        conv2dWinogradTiledInto(input, p.weights, p.pad, V, U, M, Y,
                                out, ctx.runnerFor(macs), ctx.packs,
                                p.bias.empty() ? nullptr : p.bias.data(),
                                p.relu);
    }
};

// -------------------------------------------- int8 tap-wise Winograd

struct WinogradInt8Prepared : PreparedLayer
{
    /// Owns the quantized tap-major weights and all scales;
    /// forwardInto() is const and thus shareable across workers.
    std::unique_ptr<IntWinogradConv> conv;
    ScratchArena::Slot quantized = 0; ///< int64 quantized-input slot
    ScratchArena::Slot tiles = 0;     ///< int64 raw-tile slot
    ScratchArena::Slot scatter = 0;   ///< int64 U buffer slot
    ScratchArena::Slot gemm = 0;      ///< int64 M buffer slot
    ScratchArena::Slot dequant = 0;   ///< double dequant plane slot
    ScratchArena::Slot back = 0;      ///< double back-transform slot
    std::vector<double> bias;         ///< fused epilogue; empty = none
    bool relu = false;
};

class WinogradInt8Backend : public ConvBackend
{
  public:
    ConvEngine kind() const override { return ConvEngine::WinogradInt8; }

    bool
    supports(const ConvLayerDesc &desc) const override
    {
        return desc.winogradEligible();
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        twq_assert(supports(desc),
                   "winograd-int8 backend on ineligible layer ",
                   desc.name);
        twq_assert(build.calibration && !build.calibration->empty(),
                   "winograd-int8 backend needs calibration samples");
        IntWinogradConfig cfg = build.quant;
        cfg.variant = build.variant;
        cfg.pad = build.params.pad;
        auto prep = std::make_shared<WinogradInt8Prepared>();
        prep->conv = std::make_unique<IntWinogradConv>(
            weights, *build.calibration, cfg, build.calCache);
        prep->quantized = layerSlot("wino8.xq", desc.name);
        prep->tiles = layerSlot("wino8.V", desc.name);
        prep->scatter = layerSlot("wino8.U", desc.name);
        prep->gemm = layerSlot("wino8.M", desc.name);
        prep->dequant = layerSlot("wino8.Md", desc.name);
        prep->back = layerSlot("wino8.Y", desc.name);
        prep->bias = epilogueBias(build.epilogue, desc);
        prep->relu = build.epilogue.relu;
        return prep;
    }

    Shape
    outputShape(const PreparedLayer &prep,
                const Shape &input) const override
    {
        const auto &p = static_cast<const WinogradInt8Prepared &>(prep);
        const ConvParams cp{3, 1, p.conv->config().pad};
        return {input[0], p.conv->cout(), cp.outSize(input[2]),
                cp.outSize(input[3])};
    }

    void
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &scratch, TensorD &out,
        const RunContext &ctx) const override
    {
        const auto &p = static_cast<const WinogradInt8Prepared &>(prep);
        const WinoDims d = winoDims(input.shape(),
                                    p.conv->config().variant,
                                    p.conv->config().pad);
        TensorI64 &xq = scratch.tensorI64(p.quantized, input.shape());
        TensorI64 &V = scratch.tensorI64(
            p.tiles, {d.t * d.t, p.conv->cin(), d.tiles});
        TensorI64 &U = scratch.tensorI64(
            p.scatter, {d.t * d.t, p.conv->cin(), d.tiles});
        TensorI64 &M = scratch.tensorI64(
            p.gemm, {d.t * d.t, p.conv->cout(), d.tiles});
        TensorD &Md = scratch.tensor(
            p.dequant, {d.t * d.t, p.conv->cout(), d.tiles});
        TensorD &Y = scratch.tensor(
            p.back, {d.m * d.m, p.conv->cout(), d.tiles});
        const double macs = static_cast<double>(d.t * d.t) *
                            static_cast<double>(p.conv->cout()) *
                            static_cast<double>(p.conv->cin()) *
                            static_cast<double>(d.tiles);
        p.conv->forwardInto(input, xq, V, U, M, Md, Y, out,
                            ctx.runnerFor(macs), ctx.packs,
                            p.bias.empty() ? nullptr : p.bias.data(),
                            p.relu);
    }
};

// ------------------------------------------- blocked-layout Winograd

struct WinogradBlockedPrepared : PreparedLayer
{
    /// c-blocked tap weights feeding the NCHWc8 per-tap kernel.
    BlockedTapWeights weights;
    std::size_t pad = 1;
    ScratchArena::Slot tiles = 0;   ///< V raw-tile slot
    ScratchArena::Slot scatter = 0; ///< U buffer slot
    ScratchArena::Slot gemm = 0;    ///< M buffer slot
    ScratchArena::Slot back = 0;    ///< Y back-transform slot
    std::vector<double> bias8;      ///< per-lane bias [coutb*8]; empty = none
    bool relu = false;
};

/**
 * FP32 Winograd on the NCHWc8 blocked activation layout
 * (layout/wino_blocked.hh): run() consumes and produces blocked
 * [N, C/8, H, W, 8] tensors, so a session whose chain stays on this
 * backend keeps its inter-layer activations blocked and pays layout
 * conversion only at network ingress and egress.
 */
class WinogradBlockedBackend : public ConvBackend
{
  public:
    ConvEngine
    kind() const override
    {
        return ConvEngine::WinogradBlocked;
    }

    bool
    supports(const ConvLayerDesc &desc) const override
    {
        return desc.winogradEligible();
    }

    ActLayout
    inputLayout() const override
    {
        return ActLayout::NCHWc8;
    }

    ActLayout
    outputLayout() const override
    {
        return ActLayout::NCHWc8;
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        twq_assert(supports(desc),
                   "winograd-blocked backend on ineligible layer ",
                   desc.name);
        auto prep = std::make_shared<WinogradBlockedPrepared>();
        prep->weights = blockedTapWeights(
            winogradPrepareTapWeights(weights, build.variant));
        prep->pad = build.params.pad;
        prep->tiles = layerSlot("winoc8.V", desc.name);
        prep->scatter = layerSlot("winoc8.U", desc.name);
        prep->gemm = layerSlot("winoc8.M", desc.name);
        prep->back = layerSlot("winoc8.Y", desc.name);
        prep->bias8 = blockedBias<double>(
            epilogueBias(build.epilogue, desc));
        prep->relu = build.epilogue.relu;
        return prep;
    }

    Shape
    outputShape(const PreparedLayer &prep,
                const Shape &input) const override
    {
        const auto &p =
            static_cast<const WinogradBlockedPrepared &>(prep);
        twq_assert(input.size() == 5 && input[4] == kLayoutBlock,
                   "winograd-blocked backend expects NCHWc8 input");
        const ConvParams cp{3, 1, p.pad};
        return {input[0], p.weights.coutb, cp.outSize(input[2]),
                cp.outSize(input[3]), kLayoutBlock};
    }

    void
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &scratch, TensorD &out,
        const RunContext &ctx) const override
    {
        const auto &p =
            static_cast<const WinogradBlockedPrepared &>(prep);
        const WinoDims d = winoDims(
            {input.dim(0), input.dim(1) * kLayoutBlock, input.dim(2),
             input.dim(3)},
            p.weights.variant, p.pad);
        const std::size_t tt = d.t * d.t;
        TensorD &V = scratch.tensor(
            p.tiles, {tt, p.weights.cinb, d.tiles, kLayoutBlock});
        TensorD &U = scratch.tensor(
            p.scatter, {tt, p.weights.cinb, d.tiles, kLayoutBlock});
        TensorD &M = scratch.tensor(
            p.gemm, {tt, p.weights.coutb, d.tiles, kLayoutBlock});
        TensorD &Y = scratch.tensor(
            p.back,
            {d.m * d.m, p.weights.coutb, d.tiles, kLayoutBlock});
        // Physical MACs: the padded lanes compute too.
        const double macs =
            static_cast<double>(tt) *
            static_cast<double>(p.weights.coutb * kLayoutBlock) *
            static_cast<double>(p.weights.cinb * kLayoutBlock) *
            static_cast<double>(d.tiles);
        conv2dWinogradBlockedInto(
            input, p.weights, p.pad, V, U, M, Y, out,
            ctx.runnerFor(macs),
            p.bias8.empty() ? nullptr : p.bias8.data(), p.relu);
    }
};

// -------------------------------------- blocked-layout int8 Winograd

struct WinogradBlockedInt8Prepared : PreparedLayer
{
    /// Owns the quantized weights and scales (the NCHW prepared
    /// state the blocked execution derives from).
    std::unique_ptr<IntWinogradConv> conv;
    /// Blocked pair-interleaved weights + blocked execution; borrows
    /// `conv`, so declaration order matters.
    std::unique_ptr<BlockedIntWinograd> blocked;
    ScratchArena::Slot quantized = 0; ///< int32 blocked-input slot
    ScratchArena::Slot tiles = 0;     ///< int32 raw-tile slot
    ScratchArena::Slot scatter = 0;   ///< int32 B-transformed slot
    ScratchArena::Slot narrowed = 0;  ///< int16 GEMM-operand slot
    ScratchArena::Slot narrowed8 = 0; ///< biased-u8 GEMM-operand slot
    ScratchArena::Slot gemm = 0;      ///< int32 M buffer slot
    ScratchArena::Slot dequant = 0;   ///< f64 rescaled-M slot
    ScratchArena::Slot back = 0;      ///< f64 Y back-transform slot
    std::vector<double> bias8; ///< per-lane bias [coutb*8]; empty = none
    bool relu = false;
};

/**
 * int8 tap-wise quantized Winograd on the NCHWc8 blocked activation
 * layout (quant/int_wino_blocked.hh): blocked tiles quantize in
 * place, the per-tap widening GEMM runs the int16 c-block kernel,
 * and the tap-wise S_BG rescale is applied per GEMM slice exactly
 * like the NCHW engine — outputs are bit-identical to it (and to
 * forwardInt8Reference on the fully integer path).
 */
class WinogradBlockedInt8Backend : public ConvBackend
{
  public:
    ConvEngine
    kind() const override
    {
        return ConvEngine::WinogradBlockedInt8;
    }

    bool
    supports(const ConvLayerDesc &desc) const override
    {
        return desc.winogradEligible();
    }

    ActLayout
    inputLayout() const override
    {
        return ActLayout::NCHWc8;
    }

    ActLayout
    outputLayout() const override
    {
        return ActLayout::NCHWc8;
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        twq_assert(supports(desc),
                   "winograd-blocked-int8 backend on ineligible "
                   "layer ",
                   desc.name);
        twq_assert(build.calibration && !build.calibration->empty(),
                   "winograd-blocked-int8 backend needs calibration "
                   "samples");
        IntWinogradConfig cfg = build.quant;
        cfg.variant = build.variant;
        cfg.pad = build.params.pad;
        auto prep = std::make_shared<WinogradBlockedInt8Prepared>();
        prep->conv = std::make_unique<IntWinogradConv>(
            weights, *build.calibration, cfg, build.calCache);
        prep->blocked =
            std::make_unique<BlockedIntWinograd>(*prep->conv);
        prep->quantized = layerSlot("winoc8i.xq", desc.name);
        prep->tiles = layerSlot("winoc8i.V", desc.name);
        prep->scatter = layerSlot("winoc8i.U32", desc.name);
        prep->narrowed = layerSlot("winoc8i.U16", desc.name);
        prep->narrowed8 = layerSlot("winoc8i.U8", desc.name);
        prep->gemm = layerSlot("winoc8i.M", desc.name);
        prep->dequant = layerSlot("winoc8i.Md", desc.name);
        prep->back = layerSlot("winoc8i.Y", desc.name);
        prep->bias8 = blockedBias<double>(
            epilogueBias(build.epilogue, desc));
        prep->relu = build.epilogue.relu;
        return prep;
    }

    Shape
    outputShape(const PreparedLayer &prep,
                const Shape &input) const override
    {
        const auto &p =
            static_cast<const WinogradBlockedInt8Prepared &>(prep);
        twq_assert(input.size() == 5 && input[4] == kLayoutBlock,
                   "winograd-blocked-int8 backend expects NCHWc8 "
                   "input");
        const ConvParams cp{3, 1, p.conv->config().pad};
        return {input[0], p.blocked->coutb(), cp.outSize(input[2]),
                cp.outSize(input[3]), kLayoutBlock};
    }

    void
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &scratch, TensorD &out,
        const RunContext &ctx) const override
    {
        const auto &p =
            static_cast<const WinogradBlockedInt8Prepared &>(prep);
        const WinoDims d =
            winoDimsBlocked(input.shape(), p.conv->config().variant,
                            p.conv->config().pad);
        const std::size_t tt = d.t * d.t;
        TensorI32 &xq = scratch.tensorI32(p.quantized, input.shape());
        const Shape ushape{tt, p.blocked->cinb(), d.tiles,
                           kLayoutBlock};
        TensorI32 &V = scratch.tensorI32(p.tiles, ushape);
        TensorI32 &U32 = scratch.tensorI32(p.scatter, ushape);
        TensorI16 &U16 = scratch.tensorI16(p.narrowed, ushape);
        TensorI8 &U8 = scratch.tensorI8(p.narrowed8, ushape);
        TensorI32 &M = scratch.tensorI32(
            p.gemm,
            {tt, p.blocked->coutb(), d.tiles, kLayoutBlock});
        TensorD &Md = scratch.tensor(
            p.dequant,
            {tt, p.blocked->coutb(), d.tiles, kLayoutBlock});
        TensorD &Y = scratch.tensor(
            p.back,
            {d.m * d.m, p.blocked->coutb(), d.tiles, kLayoutBlock});
        // Physical MACs: the padded lanes compute too.
        const double macs =
            static_cast<double>(tt) *
            static_cast<double>(p.blocked->coutb() * kLayoutBlock) *
            static_cast<double>(p.blocked->cinb() * kLayoutBlock) *
            static_cast<double>(d.tiles);
        p.blocked->forwardInto(
            input, xq, V, U32, U16, U8, M, Md, Y, out,
            ctx.runnerFor(macs),
            p.bias8.empty() ? nullptr : p.bias8.data(), p.relu);
    }
};

// --------------------------------------- binary16 blocked Winograd

struct WinogradBlockedF16Prepared : PreparedLayer
{
    /// c-blocked tap weights narrowed to binary16 storage.
    BlockedTapWeightsF16 weights;
    std::size_t pad = 1;
    ScratchArena::Slot tiles16 = 0; ///< V16 half raw-tile slot
    ScratchArena::Slot tiles = 0;   ///< V fp32 widened-tile slot
    ScratchArena::Slot scatter = 0; ///< U fp32 buffer slot
    ScratchArena::Slot gemm = 0;    ///< M fp32 buffer slot
    ScratchArena::Slot back = 0;    ///< Y fp32 back-transform slot
    ScratchArena::Slot outf = 0;    ///< fp32 pre-narrow output slot
    ScratchArena::Slot inHalf = 0;  ///< half input slot (run() seam)
    ScratchArena::Slot outHalf = 0; ///< half output slot (run() seam)
    std::vector<float> bias8; ///< per-lane bias [coutb*8]; empty = none
    bool relu = false;
};

/**
 * Half-storage blocked Winograd (layout/wino_blocked.hh): weights and
 * inter-layer activations live as IEEE binary16 in NCHWc8, halving
 * both bandwidths; all arithmetic runs in fp32. The hot path is
 * runF16(); run() exists for the session's probe and conversion seams
 * and pays an explicit double<->half conversion on either side.
 */
class WinogradBlockedF16Backend : public ConvBackend
{
  public:
    ConvEngine
    kind() const override
    {
        return ConvEngine::WinogradBlockedF16;
    }

    bool
    supports(const ConvLayerDesc &desc) const override
    {
        return desc.winogradEligible();
    }

    ActLayout
    inputLayout() const override
    {
        return ActLayout::NCHWc8;
    }

    ActLayout
    outputLayout() const override
    {
        return ActLayout::NCHWc8;
    }

    bool
    f16Storage() const override
    {
        return true;
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        twq_assert(supports(desc),
                   "winograd-blocked-f16 backend on ineligible layer ",
                   desc.name);
        auto prep = std::make_shared<WinogradBlockedF16Prepared>();
        prep->weights = blockedTapWeightsF16(
            winogradPrepareTapWeights(weights, build.variant));
        prep->pad = build.params.pad;
        prep->tiles16 = layerSlot("winoc8h.V16", desc.name);
        prep->tiles = layerSlot("winoc8h.V", desc.name);
        prep->scatter = layerSlot("winoc8h.U", desc.name);
        prep->gemm = layerSlot("winoc8h.M", desc.name);
        prep->back = layerSlot("winoc8h.Y", desc.name);
        prep->outf = layerSlot("winoc8h.outF", desc.name);
        prep->inHalf = layerSlot("winoc8h.xh", desc.name);
        prep->outHalf = layerSlot("winoc8h.yh", desc.name);
        prep->bias8 = blockedBias<float>(
            epilogueBias(build.epilogue, desc));
        prep->relu = build.epilogue.relu;
        return prep;
    }

    Shape
    outputShape(const PreparedLayer &prep,
                const Shape &input) const override
    {
        const auto &p =
            static_cast<const WinogradBlockedF16Prepared &>(prep);
        twq_assert(input.size() == 5 && input[4] == kLayoutBlock,
                   "winograd-blocked-f16 backend expects NCHWc8 "
                   "input");
        const ConvParams cp{3, 1, p.pad};
        return {input[0], p.weights.coutb, cp.outSize(input[2]),
                cp.outSize(input[3]), kLayoutBlock};
    }

    void
    runF16(const PreparedLayer &prep, const TensorF16 &input,
           ScratchArena &scratch, TensorF16 &out,
           const RunContext &ctx) const override
    {
        const auto &p =
            static_cast<const WinogradBlockedF16Prepared &>(prep);
        const WinoDims d = winoDimsBlocked(
            input.shape(), p.weights.variant, p.pad);
        const std::size_t tt = d.t * d.t;
        const Shape vshape{tt, p.weights.cinb, d.tiles, kLayoutBlock};
        TensorF16 &V16 = scratch.tensorF16(p.tiles16, vshape);
        TensorF &V = scratch.tensorF(p.tiles, vshape);
        TensorF &U = scratch.tensorF(p.scatter, vshape);
        TensorF &M = scratch.tensorF(
            p.gemm, {tt, p.weights.coutb, d.tiles, kLayoutBlock});
        TensorF &Y = scratch.tensorF(
            p.back,
            {d.m * d.m, p.weights.coutb, d.tiles, kLayoutBlock});
        TensorF &outF = scratch.tensorF(p.outf, out.shape());
        // Physical MACs: the padded lanes compute too.
        const double macs =
            static_cast<double>(tt) *
            static_cast<double>(p.weights.coutb * kLayoutBlock) *
            static_cast<double>(p.weights.cinb * kLayoutBlock) *
            static_cast<double>(d.tiles);
        conv2dWinogradBlockedF16Into(
            input, p.weights, p.pad, V16, V, U, M, Y, outF, out,
            ctx.runnerFor(macs),
            p.bias8.empty() ? nullptr : p.bias8.data(), p.relu);
    }

    void
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &scratch, TensorD &out,
        const RunContext &ctx) const override
    {
        // Conversion seam: narrow the double input to storage halves,
        // drive the binary16 hot path, widen the result back. The
        // stored-half activations are exactly what a chained f16 run
        // would see, so probe accuracy measures the real engine.
        const auto &p =
            static_cast<const WinogradBlockedF16Prepared &>(prep);
        TensorF16 &xh = scratch.tensorF16(p.inHalf, input.shape());
        tensorDToF16(input, xh);
        TensorF16 &yh = scratch.tensorF16(
            p.outHalf, outputShape(prep, input.shape()));
        runF16(prep, xh, scratch, yh, ctx);
        tensorF16ToD(yh, out);
    }
};

// ------------------------------------------------- int8 im2col GEMM

struct Im2colInt8Prepared : PreparedLayer
{
    TensorI8 wq;             ///< [Cout, Cin*K*K] int8 GEMM operand
    std::vector<double> sw;  ///< per-output-channel weight scales
    double sx = 1.0;         ///< activation scale (calibrated)
    bool pow2Sx = false; ///< sx is a power of two (exact reciprocal)
    bool pairSafe = false; ///< weights pass gemm::gemmS8PairSafe
    int bits = 8;
    ConvParams params;
    ScratchArena::Slot quantized = 0; ///< int8 input slot
    ScratchArena::Slot cols = 0;      ///< int8 column-buffer slot
    ScratchArena::Slot acc = 0;       ///< int32 accumulator slot
    ScratchArena::Slot requant = 0;   ///< u8 requantized-output slot
    std::vector<double> bias;         ///< fused epilogue; empty = none
    bool relu = false;
    double requantScale = 0.0; ///< >0: also emit u8 at the same write
};

/**
 * The quantized path's universal fallback (ROADMAP item): weights are
 * quantized to int8 per output channel, activations layer-wise from
 * calibration, and the lowered product runs the widening int8 -> int32
 * micro-kernel; the int32 accumulator dequantizes into the FP output
 * so layers chain normally. Supports any kernel/stride, giving
 * winograd-ineligible layers an apples-to-apples quantized baseline.
 */
class Im2colInt8Backend : public ConvBackend
{
  public:
    ConvEngine kind() const override { return ConvEngine::Im2colInt8; }

    bool
    supports(const ConvLayerDesc &) const override
    {
        return true; // any kernel/stride, like fp im2col
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        twq_assert(build.calibration && !build.calibration->empty(),
                   "im2col-int8 backend needs calibration samples");
        auto prep = std::make_shared<Im2colInt8Prepared>();
        prep->params = build.params;
        // Operands are stored in int8 tensors, so wider configured
        // spatial widths (the 10-bit int-Winograd configs) clamp to
        // the 8 bits this engine can actually represent.
        prep->bits = std::min(build.quant.spatialBits, 8);
        prep->quantized = layerSlot("im8.xq", desc.name);
        prep->cols = layerSlot("im8.cols", desc.name);
        prep->acc = layerSlot("im8.acc", desc.name);
        prep->requant = layerSlot("im8.requant", desc.name);
        prep->bias = epilogueBias(build.epilogue, desc);
        prep->relu = build.epilogue.relu;
        prep->requantScale = build.epilogue.requantScale;

        // Activation scale from the layer's calibration activations;
        // shared with the layer's other quantized candidates when the
        // session provides a calibration cache.
        MaxCalibrator localCal;
        if (!build.calCache) {
            for (const TensorD &x : *build.calibration)
                localCal.observeAll(x.storage());
            countCalibrationPass();
        }
        const MaxCalibrator &xcal =
            build.calCache ? build.calCache->spatial() : localCal;
        prep->sx = xcal.scale(prep->bits);
        if (build.quant.pow2Scales)
            prep->sx = pow2Ceil(prep->sx);
        // A power-of-two scale has an exact reciprocal, so the
        // vectorized multiply-by-reciprocal quantization is
        // bit-identical to the scalar divide.
        int e = 0;
        prep->pow2Sx = std::frexp(prep->sx, &e) == 0.5;

        // Per-output-channel weight quantization on the packed
        // [Cout, Cin*K*K] layout.
        const TensorD wmat = packConvWeights(weights);
        const std::size_t cout = wmat.dim(0);
        const std::size_t ckk = wmat.dim(1);
        prep->wq = TensorI8({cout, ckk});
        prep->sw.resize(cout);
        for (std::size_t oc = 0; oc < cout; ++oc) {
            double mx = 0.0;
            for (std::size_t i = 0; i < ckk; ++i)
                mx = std::max(mx, std::abs(wmat[oc * ckk + i]));
            double s = scaleForMax(std::max(mx, 1e-30), prep->bits);
            if (build.quant.pow2Scales)
                s = pow2Ceil(s);
            prep->sw[oc] = s;
            for (std::size_t i = 0; i < ckk; ++i)
                prep->wq[oc * ckk + i] = static_cast<std::int8_t>(
                    quantize(wmat[oc * ckk + i], s, prep->bits));
        }
        // One scan of the static weights decides whether the
        // vpmaddubsw GEMM fast path is provably saturation-free for
        // this layer (valid for any activations and row sub-block).
        prep->pairSafe =
            gemm::gemmS8PairSafe(prep->wq.data(), cout, ckk);
        return prep;
    }

    Shape
    outputShape(const PreparedLayer &prep,
                const Shape &input) const override
    {
        const auto &p = static_cast<const Im2colInt8Prepared &>(prep);
        return {input[0], p.wq.dim(0), p.params.outSize(input[2]),
                p.params.outSize(input[3])};
    }

    void
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &scratch, TensorD &out,
        const RunContext &ctx) const override
    {
        const auto &p = static_cast<const Im2colInt8Prepared &>(prep);
        const std::size_t n = input.dim(0);
        const std::size_t cout = p.wq.dim(0);
        const std::size_t ckk = p.wq.dim(1);
        const std::size_t ho = p.params.outSize(input.dim(2));
        const std::size_t wo = p.params.outSize(input.dim(3));
        const std::size_t spatial = ho * wo;

        TensorI8 &xq = scratch.tensorI8(p.quantized, input.shape());
        {
            TWQ_SPAN("im8.quantize");
            TWQ_STAGE_PERF("im8.quantize");
            if (p.pow2Sx) {
                // Vectorized narrowing quantization (exact for pow2
                // scales — see layout::QuantizeI8Fn).
                layout::kernels().quantizeI8(
                    input.data(), 1.0 / p.sx,
                    static_cast<double>(quantMin(p.bits)),
                    static_cast<double>(quantMax(p.bits)), xq.data(),
                    input.numel());
            } else {
                for (std::size_t i = 0; i < input.numel(); ++i)
                    xq[i] = static_cast<std::int8_t>(
                        quantize(input[i], p.sx, p.bits));
            }
        }

        TensorI8 &cols = scratch.tensorI8(p.cols, {ckk, spatial});
        TensorI32 &acc = scratch.tensorI32(p.acc, {cout, spatial});
        const double macs = static_cast<double>(cout) *
                            static_cast<double>(ckk) *
                            static_cast<double>(spatial);
        gemm::ParallelRunner *runner = ctx.runnerFor(macs);
        gemm::PackPool *packs = runner ? ctx.packs : nullptr;

        for (std::size_t in = 0; in < n; ++in) {
            {
                TWQ_SPAN("im8.lower");
                TWQ_STAGE_PERF("im8.lower");
                im2colInto(xq, in, p.params, cols);
            }
            // Output-channel row blocks, as in the FP im2col path.
            {
                TWQ_SPAN("im8.gemm");
                TWQ_STAGE_PERF("im8.gemm");
                gemm::runRowBlocks(
                    runner, cout, gemm::kMr,
                    [&](std::size_t r0, std::size_t rows,
                        std::size_t lane) {
                        const std::int8_t *w0 =
                            p.wq.data() + r0 * ckk;
                        std::int32_t *c0 =
                            acc.data() + r0 * spatial;
                        std::int8_t *pk =
                            gemm::lanePack<std::int8_t>(packs, lane);
                        if (p.pairSafe)
                            gemm::gemmS8S32Pair(w0, cols.data(), c0,
                                                rows, ckk, spatial,
                                                pk);
                        else
                            gemm::gemmS8S32(w0, cols.data(), c0,
                                            rows, ckk, spatial, pk);
                    });
            }

            // Dequantize into the FP output plane — y = acc * sx * sw
            // — with the fused epilogue folded into the same write:
            // bias add, ReLU, and (requantScale > 0) the requantized
            // u8 image, all without a second pass over the plane.
            TWQ_SPAN("im8.dequant");
            TWQ_STAGE_PERF("im8.dequant");
            double *dst = out.data() + in * cout * spatial;
            std::uint8_t *u8dst = nullptr;
            if (p.requantScale > 0.0) {
                TensorI8 &rq = scratch.tensorI8(
                    p.requant, {n, cout, ho, wo});
                u8dst = reinterpret_cast<std::uint8_t *>(rq.data()) +
                        in * cout * spatial;
            }
            for (std::size_t oc = 0; oc < cout; ++oc) {
                const double s = p.sx * p.sw[oc];
                const double bc = p.bias.empty() ? 0.0 : p.bias[oc];
                const bool hasBias = !p.bias.empty();
                const std::int32_t *src = acc.data() + oc * spatial;
                double *row = dst + oc * spatial;
                std::uint8_t *u8row =
                    u8dst ? u8dst + oc * spatial : nullptr;
                for (std::size_t i = 0; i < spatial; ++i) {
                    double v = static_cast<double>(src[i]) * s;
                    if (hasBias)
                        v += bc;
                    if (p.relu && v < 0.0)
                        v = 0.0;
                    row[i] = v;
                    if (u8row) {
                        double q = std::nearbyint(v / p.requantScale);
                        q = std::min(255.0, std::max(0.0, q));
                        u8row[i] = static_cast<std::uint8_t>(q);
                    }
                }
            }
        }
    }
};

} // namespace

void
ConvBackend::runF16(const PreparedLayer &, const TensorF16 &,
                    ScratchArena &, TensorF16 &,
                    const RunContext &) const
{
    twq_panic("backend ", convEngineName(kind()),
              " has no binary16 hot path (f16Storage() is false)");
}

double *
ArenaPackPool::packD(std::size_t lane)
{
    twq_assert(lane < arenas_->size(),
               "pack lane beyond the arena pool — runner lanes() "
               "exceeds the arenas this pool was built over");
    return (*arenas_)[lane]
        .tensor(packSlotD(), {gemm::packSize()})
        .data();
}

std::int64_t *
ArenaPackPool::packI64(std::size_t lane)
{
    twq_assert(lane < arenas_->size(),
               "pack lane beyond the arena pool — runner lanes() "
               "exceeds the arenas this pool was built over");
    return (*arenas_)[lane]
        .tensorI64(packSlotI64(), {gemm::packSize()})
        .data();
}

std::int8_t *
ArenaPackPool::packI8(std::size_t lane)
{
    twq_assert(lane < arenas_->size(),
               "pack lane beyond the arena pool — runner lanes() "
               "exceeds the arenas this pool was built over");
    return (*arenas_)[lane]
        .tensorI8(packSlotI8(), {gemm::packSize()})
        .data();
}

double
timeBackendRun(const ConvBackend &backend, const PreparedLayer &prep,
               const TensorD &input, ScratchArena &scratch, int iters)
{
    using Clock = std::chrono::steady_clock;
    TensorD out(backend.outputShape(prep, input.shape()));
    backend.run(prep, input, scratch, out); // warmup (fills arena)
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < iters; ++i) {
        const auto t0 = Clock::now();
        backend.run(prep, input, scratch, out);
        const double sec =
            std::chrono::duration<double>(Clock::now() - t0).count();
        best = std::min(best, sec);
    }
    return best;
}

double
timeBackendRunF16(const ConvBackend &backend,
                  const PreparedLayer &prep, const TensorF16 &input,
                  ScratchArena &scratch, int iters)
{
    using Clock = std::chrono::steady_clock;
    TensorF16 out(backend.outputShape(prep, input.shape()));
    backend.runF16(prep, input, scratch, out,
                   RunContext{}); // warmup (fills arena)
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < iters; ++i) {
        const auto t0 = Clock::now();
        backend.runF16(prep, input, scratch, out, RunContext{});
        const double sec =
            std::chrono::duration<double>(Clock::now() - t0).count();
        best = std::min(best, sec);
    }
    return best;
}

EngineRegistry::EngineRegistry()
{
    registerBackend(std::make_shared<Im2colBackend>());
    registerBackend(std::make_shared<WinogradFp32Backend>());
    registerBackend(std::make_shared<WinogradInt8Backend>());
    registerBackend(std::make_shared<Im2colInt8Backend>());
    registerBackend(std::make_shared<WinogradBlockedBackend>());
    registerBackend(std::make_shared<WinogradBlockedInt8Backend>());
    registerBackend(std::make_shared<WinogradBlockedF16Backend>());
}

EngineRegistry &
EngineRegistry::instance()
{
    static EngineRegistry registry;
    return registry;
}

void
EngineRegistry::registerBackend(std::shared_ptr<ConvBackend> backend)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &b : backends_) {
        if (b->kind() == backend->kind()) {
            b = std::move(backend);
            return;
        }
    }
    backends_.push_back(std::move(backend));
}

std::shared_ptr<const ConvBackend>
EngineRegistry::get(ConvEngine e) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &b : backends_)
        if (b->kind() == e)
            return b;
    twq_panic("no backend registered for engine ", convEngineName(e));
}

} // namespace twq
