/**
 * @file
 * Fractal data layout ⟨N, C1, H, W, C0⟩ used by the accelerator.
 *
 * The DaVinci-style Cube Unit reduces over the channel dimension in
 * groups of C0 = 32 (see Section IV-A of the paper); tensors are
 * stored with the channel dimension split into a sub-dimension C0 and
 * a super-dimension C1 = ceil(C / C0), making 32 channels and the
 * spatial W dimension contiguous in memory.
 */

#ifndef TWQ_TENSOR_FRACTAL_HH
#define TWQ_TENSOR_FRACTAL_HH

#include <cstdint>

#include "tensor/tensor.hh"

namespace twq
{

/** Channel sub-dimension size used by the Cube Unit. */
constexpr std::size_t kFractalC0 = 32;

/**
 * Pack an NCHW tensor into fractal ⟨N, C1, H, W, C0⟩ layout.
 *
 * Channels beyond C are zero-padded up to C1*C0 so the Cube Unit can
 * always consume full 32-channel groups.
 */
template <typename T>
Tensor<T> packFractal(const Tensor<T> &nchw, std::size_t c0 = kFractalC0);

/**
 * Unpack a fractal ⟨N, C1, H, W, C0⟩ tensor back to NCHW with the
 * given true channel count (drops the zero padding).
 */
template <typename T>
Tensor<T> unpackFractal(const Tensor<T> &fractal, std::size_t channels);

extern template Tensor<float> packFractal(const Tensor<float> &,
                                          std::size_t);
extern template Tensor<double> packFractal(const Tensor<double> &,
                                           std::size_t);
extern template Tensor<std::int8_t> packFractal(const Tensor<std::int8_t> &,
                                                std::size_t);
extern template Tensor<float> unpackFractal(const Tensor<float> &,
                                            std::size_t);
extern template Tensor<double> unpackFractal(const Tensor<double> &,
                                             std::size_t);
extern template Tensor<std::int8_t>
unpackFractal(const Tensor<std::int8_t> &, std::size_t);

} // namespace twq

#endif // TWQ_TENSOR_FRACTAL_HH
