/**
 * @file
 * Layer containers: Sequential and a pre-activation residual block.
 */

#ifndef TWQ_NN_SEQUENTIAL_HH
#define TWQ_NN_SEQUENTIAL_HH

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hh"

namespace twq
{

/** Runs child layers in order; backward in reverse. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a layer; returns a raw observer pointer. */
    template <typename L, typename... Args>
    L *
    emplace(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L *raw = layer.get();
        layers_.push_back(std::move(layer));
        return raw;
    }

    /** Append an already-built layer. */
    void
    append(LayerPtr layer)
    {
        layers_.push_back(std::move(layer));
    }

    TensorD forward(const TensorD &x, bool train) override;
    TensorD backward(const TensorD &grad_out) override;
    std::vector<Param *> params() override;
    std::string name() const override { return "Sequential"; }

    std::size_t size() const { return layers_.size(); }
    Layer &layer(std::size_t i) { return *layers_[i]; }

  private:
    std::vector<LayerPtr> layers_;
};

/**
 * Residual block out = relu(body(x) + x); the body is any layer
 * stack with matching input/output shape (used by the ResNet-20-like
 * ablation models).
 */
class ResidualBlock : public Layer
{
  public:
    explicit ResidualBlock(LayerPtr body) : body_(std::move(body)) {}

    TensorD forward(const TensorD &x, bool train) override;
    TensorD backward(const TensorD &grad_out) override;
    std::vector<Param *> params() override;
    std::string name() const override { return "ResidualBlock"; }

    Layer &body() { return *body_; }

  private:
    LayerPtr body_;
    TensorD relu_mask_;
};

} // namespace twq

#endif // TWQ_NN_SEQUENTIAL_HH
