/**
 * @file
 * Batch-dimension assembly helpers for the serving runtime.
 *
 * The batcher coalesces independent single-image requests into one
 * NCHW tensor; every compute kernel in the library iterates batch
 * elements independently, so a batched run is bit-identical to the
 * per-request runs it replaces.
 */

#ifndef TWQ_TENSOR_BATCH_HH
#define TWQ_TENSOR_BATCH_HH

#include "tensor/tensor.hh"

namespace twq
{

/**
 * Concatenate single-sample NCHW tensors (each with dim(0) == 1 and
 * identical C/H/W) along the batch dimension into `out`, which is
 * resized to [N, C, H, W]. Writing into a caller-owned tensor lets a
 * worker reuse its scratch storage across batches.
 */
template <typename T>
void stackBatch(const std::vector<const Tensor<T> *> &items,
                Tensor<T> &out);

/** Convenience overload returning a fresh tensor. */
template <typename T>
Tensor<T> stackBatch(const std::vector<const Tensor<T> *> &items);

/** Extract batch element `i` of an NCHW tensor as a [1, C, H, W] tensor. */
template <typename T>
Tensor<T> sliceBatch(const Tensor<T> &batch, std::size_t i);

extern template void stackBatch(const std::vector<const TensorF *> &,
                                TensorF &);
extern template void stackBatch(const std::vector<const TensorD *> &,
                                TensorD &);
extern template TensorF stackBatch(const std::vector<const TensorF *> &);
extern template TensorD stackBatch(const std::vector<const TensorD *> &);
extern template TensorF sliceBatch(const TensorF &, std::size_t);
extern template TensorD sliceBatch(const TensorD &, std::size_t);

} // namespace twq

#endif // TWQ_TENSOR_BATCH_HH
