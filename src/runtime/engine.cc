#include "runtime/engine.hh"

#include "common/logging.hh"
#include "winograd/conv.hh"

namespace twq
{

namespace
{

// ------------------------------------------------------------- im2col

struct Im2colPrepared : PreparedLayer
{
    TensorD weights; ///< [Cout, Cin, K, K]
    ConvParams params;
};

class Im2colBackend : public ConvBackend
{
  public:
    ConvEngine kind() const override { return ConvEngine::Im2col; }

    bool
    supports(const ConvLayerDesc &) const override
    {
        return true; // the universal fallback
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &, const TensorD &weights,
            const LayerBuild &build) const override
    {
        auto prep = std::make_shared<Im2colPrepared>();
        prep->weights = weights;
        prep->params = build.params;
        return prep;
    }

    TensorD
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &) const override
    {
        const auto &p = static_cast<const Im2colPrepared &>(prep);
        return conv2dIm2col(input, p.weights, p.params);
    }
};

// ------------------------------------------------------ FP32 Winograd

struct WinogradFp32Prepared : PreparedLayer
{
    WinogradWeights<double> weights;
    std::size_t pad = 1;
};

class WinogradFp32Backend : public ConvBackend
{
  public:
    ConvEngine kind() const override { return ConvEngine::WinogradFp32; }

    bool
    supports(const ConvLayerDesc &desc) const override
    {
        return desc.winogradEligible();
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        twq_assert(supports(desc),
                   "winograd-fp32 backend on ineligible layer ",
                   desc.name);
        auto prep = std::make_shared<WinogradFp32Prepared>();
        prep->weights = winogradPrepareWeights(weights, build.variant);
        prep->pad = build.params.pad;
        return prep;
    }

    TensorD
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &) const override
    {
        const auto &p = static_cast<const WinogradFp32Prepared &>(prep);
        return conv2dWinogradPre(input, p.weights, p.pad);
    }
};

// -------------------------------------------- int8 tap-wise Winograd

struct WinogradInt8Prepared : PreparedLayer
{
    /// Owns the quantized Winograd-domain weights and all scales;
    /// forward() is const and thus shareable across workers.
    std::unique_ptr<IntWinogradConv> conv;
};

class WinogradInt8Backend : public ConvBackend
{
  public:
    ConvEngine kind() const override { return ConvEngine::WinogradInt8; }

    bool
    supports(const ConvLayerDesc &desc) const override
    {
        return desc.winogradEligible();
    }

    std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const override
    {
        twq_assert(supports(desc),
                   "winograd-int8 backend on ineligible layer ",
                   desc.name);
        twq_assert(build.calibration && !build.calibration->empty(),
                   "winograd-int8 backend needs calibration samples");
        IntWinogradConfig cfg = build.quant;
        cfg.variant = build.variant;
        cfg.pad = build.params.pad;
        auto prep = std::make_shared<WinogradInt8Prepared>();
        prep->conv = std::make_unique<IntWinogradConv>(
            weights, *build.calibration, cfg);
        return prep;
    }

    TensorD
    run(const PreparedLayer &prep, const TensorD &input,
        ScratchArena &) const override
    {
        const auto &p = static_cast<const WinogradInt8Prepared &>(prep);
        return p.conv->forward(input);
    }
};

} // namespace

EngineRegistry::EngineRegistry()
{
    registerBackend(std::make_shared<Im2colBackend>());
    registerBackend(std::make_shared<WinogradFp32Backend>());
    registerBackend(std::make_shared<WinogradInt8Backend>());
}

EngineRegistry &
EngineRegistry::instance()
{
    static EngineRegistry registry;
    return registry;
}

void
EngineRegistry::registerBackend(std::shared_ptr<ConvBackend> backend)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &b : backends_) {
        if (b->kind() == backend->kind()) {
            b = std::move(backend);
            return;
        }
    }
    backends_.push_back(std::move(backend));
}

std::shared_ptr<const ConvBackend>
EngineRegistry::get(ConvEngine e) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &b : backends_)
        if (b->kind() == e)
            return b;
    twq_panic("no backend registered for engine ", convEngineName(e));
}

} // namespace twq
