/**
 * @file
 * Flat tap-major Winograd execution: scatter – per-tap GEMM – gather.
 *
 * The tile-at-a-time implementations in winograd/conv.hh apply the
 * whole pipeline to one [t, t] tile at a time through heap-allocated
 * Matrix temporaries, which wastes the batch-level parallelism the
 * algorithm exposes. This header provides the production layout used
 * by fast Winograd implementations (cf. Lavin & Gray; TVM):
 *
 *   scatter  B^T x B for every tile of the batch, written tap-major
 *            into one contiguous buffer U of shape [t*t, Cin, P] with
 *            P = N * tilesY * tilesX,
 *   GEMM     t*t independent [Cout, Cin] x [Cin, P] matrix products
 *            into M of shape [t*t, Cout, P],
 *   gather   A^T Y A per (oc, p) column of M, written straight into
 *            the NCHW output.
 *
 * Per element the arithmetic (and its accumulation order over input
 * channels) is identical to conv2dWinogradPre, so results match the
 * tile-at-a-time reference bit for bit on hardware without FMA
 * contraction, and within rounding everywhere else. The same three
 * stages run the integer path (quant/int_winograd) and the
 * winograd-aware training layer (nn/wino_conv).
 */

#ifndef TWQ_WINOGRAD_TILED_HH
#define TWQ_WINOGRAD_TILED_HH

#include <cstdint>
#include <vector>

#include "gemm/gemm.hh"
#include "gemm/parallel.hh"
#include "tensor/im2col.hh"
#include "tensor/tensor.hh"
#include "winograd/conv.hh"
#include "winograd/matrices.hh"

namespace twq
{

/** Tile geometry of one Winograd launch. */
struct WinoDims
{
    std::size_t t = 0;       ///< transformed tile size
    std::size_t m = 0;       ///< output tile size
    std::size_t n = 0;       ///< batch
    std::size_t cin = 0;
    std::size_t ho = 0;      ///< output height
    std::size_t wo = 0;      ///< output width
    std::size_t tilesY = 0;
    std::size_t tilesX = 0;
    std::size_t tiles = 0;   ///< P = n * tilesY * tilesX
};

/** Geometry for an NCHW input under a variant and padding. */
WinoDims winoDims(const Shape &input, WinoVariant v, std::size_t pad);

/**
 * Weights re-laid tap-major: one flat [Cout, Cin] matrix per tap,
 * contiguous as [t*t][Cout][Cin]. This is the layout the per-tap GEMM
 * consumes directly; the transform matrices are cached alongside so
 * the hot path never rebuilds them from rationals.
 */
template <typename T>
struct WinogradTapWeights
{
    WinoVariant variant = WinoVariant::F2;
    std::size_t cout = 0;
    std::size_t cin = 0;
    /// [t*t][cout][cin]; tap k holds G f G^T sampled at tap k.
    std::vector<T> taps;

    const T *
    tap(std::size_t k) const
    {
        return taps.data() + k * cout * cin;
    }

    T &
    at(std::size_t k, std::size_t oc, std::size_t ic)
    {
        return taps[(k * cout + oc) * cin + ic];
    }
};

/** Transform [Cout, Cin, 3, 3] weights straight into tap-major form. */
template <typename T>
WinogradTapWeights<T> winogradPrepareTapWeights(const Tensor<T> &weights,
                                                WinoVariant v);

/** Re-lay per-(oc,ic)-tile weights (winograd/conv.hh) tap-major. */
template <typename T>
WinogradTapWeights<T> tapMajorWeights(const WinogradWeights<T> &w);

/**
 * Sparse schedule of a tile transform L s L^T, flattened to the
 * Kronecker product L ⊗ L acting on the tap dimension: output row r
 * is Σ coeff * input row `in` over this row's terms. Applied to the
 * flat [taps, C*P] buffers, every pass is a contiguous row AXPY, so
 * the transforms vectorize exactly like the per-tap GEMM instead of
 * running tiny t x t matmuls per tile. Zero entries of L (half of
 * B^T/A^T for F2/F4) never appear as terms.
 */
template <typename T>
struct WinoKronPlan
{
    struct Term
    {
        std::uint16_t in;
        T coeff;
    };
    std::size_t rowsOut = 0;
    std::size_t rowsIn = 0;
    std::vector<Term> terms;            ///< rows concatenated
    std::vector<std::uint32_t> rowStart; ///< [rowsOut + 1]
};

/** Build the L ⊗ L plan from an exact rational transform matrix. */
template <typename T>
WinoKronPlan<T> makeKronPlan(const Matrix<Rational> &l);

/** Cached B^T ⊗ B^T (input transform) for a variant. */
template <typename T>
const WinoKronPlan<T> &winoInputKron(WinoVariant v);

/** Cached A^T ⊗ A^T (output transform) for a variant. */
template <typename T>
const WinoKronPlan<T> &winoOutputKron(WinoVariant v);

/** Cached B ⊗ B (transposed input transform, training backward). */
template <typename T>
const WinoKronPlan<T> &winoInputKronT(WinoVariant v);

/** Cached A ⊗ A (transposed output transform, training backward). */
template <typename T>
const WinoKronPlan<T> &winoOutputKronT(WinoVariant v);

/** y[r] = Σ coeff * x[in] over rows of length `len`. */
template <typename T>
void applyKron(const WinoKronPlan<T> &plan, const T *x, std::size_t len,
               T *y);

/**
 * Stage 1 of the scatter: copy every (padded) input tile of the batch
 * into V, reshaped to [t*t, Cin, P] — pure data movement, the
 * B-transform runs afterwards as row passes over V. Every element of
 * V is written, so no clearing is needed, and a caller reusing the
 * buffer across batches performs no allocation once shapes stabilize.
 */
template <typename T>
void winogradGatherTiles(const Tensor<T> &input, WinoVariant v,
                         std::size_t pad, Tensor<T> &V);

/**
 * Transposed counterpart of winogradGatherTiles: scatter-ADD tile
 * rows of V back into the (padded) input geometry. Overlapping tile
 * windows accumulate; `grad` must be pre-shaped NCHW. Used by the
 * training backward to push B-domain gradients into the input.
 */
template <typename T>
void winogradScatterAddTiles(const Tensor<T> &V, WinoVariant v,
                             std::size_t pad, Tensor<T> &grad);

/**
 * Scatter stage: gather raw tiles into V, then apply the B-transform
 * as Kronecker row passes into U ([t*t, Cin, P]).
 */
template <typename T>
void winogradScatter(const Tensor<T> &input, WinoVariant v,
                     std::size_t pad, Tensor<T> &V, Tensor<T> &U);

/**
 * GEMM stage: M[k] = W[k] * U[k] for every tap k, with W[k] the
 * [Cout, Cin] tap slice, each product running the blocked gemm core.
 * M is reshaped to [t*t, Cout, P]. The t*t taps are independent: when
 * `runner` is non-null they are sharded across it (pack buffers drawn
 * from `packs` when provided), and when taps alone would under-fill
 * the pool each tap's product is further split into P column blocks
 * (gemm::colShards). Every shard computes the same per-element
 * ascending-k sums it would serially, so parallel execution is
 * bit-identical to serial under any shard plan.
 */
template <typename T>
void winogradTapGemm(const WinogradTapWeights<T> &w, const Tensor<T> &U,
                     Tensor<T> &M,
                     gemm::ParallelRunner *runner = nullptr,
                     gemm::PackPool *packs = nullptr);

/**
 * Stage 2 of the gather: write the A-transformed tile rows Y
 * ([m*m, Cout, P]) into the NCHW output (edge tiles clipped). `out`
 * must already have shape [n, Cout, ho, wo].
 *
 * Optional fused epilogue: a non-null `bias` ([Cout]) is added per
 * output channel and `relu` clamps negatives to zero, both applied to
 * each element as it is written — the untile already touches every
 * output exactly once, so the epilogue costs no extra memory pass and
 * is bit-identical to a separate bias/ReLU sweep over the output.
 */
template <typename T>
void winogradUntile(const Tensor<T> &Y, WinoVariant v, Tensor<T> &out,
                    const T *bias = nullptr, bool relu = false);

/**
 * Gather stage: A-transform M as Kronecker row passes into Y
 * ([m*m, Cout, P]), then untile into the NCHW output (with the
 * untile's optional fused bias/ReLU epilogue).
 */
template <typename T>
void winogradGather(const Tensor<T> &M, WinoVariant v, Tensor<T> &Y,
                    Tensor<T> &out, const T *bias = nullptr,
                    bool relu = false);

/**
 * Full tiled Winograd convolution with caller-provided buffers (e.g.
 * ScratchArena slots): V raw tiles, U transformed tiles, M GEMM
 * output, Y back-transformed tiles. `out` must be pre-shaped to
 * [n, Cout, ho, wo]; the buffers are reshaped as needed. A non-null
 * `runner` shards the per-tap GEMMs (see winogradTapGemm). `bias` /
 * `relu` are the untile's fused epilogue (see winogradUntile).
 */
template <typename T>
void conv2dWinogradTiledInto(const Tensor<T> &input,
                             const WinogradTapWeights<T> &w,
                             std::size_t pad, Tensor<T> &V, Tensor<T> &U,
                             Tensor<T> &M, Tensor<T> &Y, Tensor<T> &out,
                             gemm::ParallelRunner *runner = nullptr,
                             gemm::PackPool *packs = nullptr,
                             const T *bias = nullptr, bool relu = false);

/** Convenience wrapper allocating its own buffers. */
template <typename T>
Tensor<T> conv2dWinogradTiled(const Tensor<T> &input,
                              const WinogradTapWeights<T> &w,
                              std::size_t pad = 1);

// Raw-pointer helpers shared with the integer pipeline
// (quant/int_winograd) and the training layer (nn/wino_conv). The
// t x t products run gemm::referenceGemm — operands this small never
// amortize the blocked core's packing.

/**
 * y = l x l^T for flat row-major square tiles ([t,t]); `tmp` is a
 * caller-provided [t*t] workspace. Accumulation order matches
 * matmul() so results are bit-compatible with the reference path.
 */
template <typename T>
inline void
transformTileFlat(const T *l, const T *x, std::size_t t, T *tmp, T *y)
{
    gemm::referenceGemm(l, x, tmp, t, t, t);
    // y = tmp * l^T without materializing the transpose.
    for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
            T s{};
            for (std::size_t k = 0; k < t; ++k)
                s += tmp[i * t + k] * l[j * t + k];
            y[i * t + j] = s;
        }
    }
}

/**
 * res = a y a^T with a of shape [m, t] (flat row-major) and y [t, t];
 * res is [m, m], tmp a caller-provided [m*t] workspace.
 */
template <typename T>
inline void
outputTransformFlat(const T *a, const T *y, std::size_t m, std::size_t t,
                    T *tmp, T *res)
{
    gemm::referenceGemm(a, y, tmp, m, t, t);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            T s{};
            for (std::size_t k = 0; k < t; ++k)
                s += tmp[i * t + k] * a[j * t + k];
            res[i * m + j] = s;
        }
    }
}

/**
 * Copy the [t, t] input window feeding output block (ty*m, tx*m) of
 * image n, channel c into flat row-major `tile`; out-of-range samples
 * (padding) read as zero.
 */
template <typename T>
inline void
extractInputTileFlat(const Tensor<T> &input, std::size_t n,
                     std::size_t c, std::size_t ty, std::size_t tx,
                     const WinoDims &d, std::size_t pad, T *tile)
{
    const std::size_t h = input.dim(2);
    const std::size_t w = input.dim(3);
    const T *plane =
        input.data() + (n * input.dim(1) + c) * h * w;
    const std::ptrdiff_t y0 = static_cast<std::ptrdiff_t>(ty * d.m) -
                              static_cast<std::ptrdiff_t>(pad);
    const std::ptrdiff_t x0 = static_cast<std::ptrdiff_t>(tx * d.m) -
                              static_cast<std::ptrdiff_t>(pad);
    for (std::size_t i = 0; i < d.t; ++i) {
        const std::ptrdiff_t iy = y0 + static_cast<std::ptrdiff_t>(i);
        T *row = tile + i * d.t;
        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
            for (std::size_t j = 0; j < d.t; ++j)
                row[j] = T{};
            continue;
        }
        const T *src = plane + static_cast<std::size_t>(iy) * w;
        for (std::size_t j = 0; j < d.t; ++j) {
            const std::ptrdiff_t ix =
                x0 + static_cast<std::ptrdiff_t>(j);
            row[j] = (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w))
                         ? T{}
                         : src[static_cast<std::size_t>(ix)];
        }
    }
}

extern template struct WinogradTapWeights<float>;
extern template struct WinogradTapWeights<double>;
extern template struct WinoKronPlan<float>;
extern template struct WinoKronPlan<double>;
extern template struct WinoKronPlan<std::int32_t>;
extern template struct WinoKronPlan<std::int64_t>;
extern template WinogradTapWeights<float>
winogradPrepareTapWeights(const Tensor<float> &, WinoVariant);
extern template WinogradTapWeights<double>
winogradPrepareTapWeights(const Tensor<double> &, WinoVariant);
extern template WinogradTapWeights<float>
tapMajorWeights(const WinogradWeights<float> &);
extern template WinogradTapWeights<double>
tapMajorWeights(const WinogradWeights<double> &);
extern template WinoKronPlan<float> makeKronPlan(const Matrix<Rational> &);
extern template WinoKronPlan<double>
makeKronPlan(const Matrix<Rational> &);
extern template WinoKronPlan<std::int32_t>
makeKronPlan(const Matrix<Rational> &);
extern template WinoKronPlan<std::int64_t>
makeKronPlan(const Matrix<Rational> &);
extern template const WinoKronPlan<float> &winoInputKron(WinoVariant);
extern template const WinoKronPlan<double> &winoInputKron(WinoVariant);
extern template const WinoKronPlan<std::int32_t> &
winoInputKron(WinoVariant);
extern template const WinoKronPlan<std::int64_t> &
winoInputKron(WinoVariant);
extern template const WinoKronPlan<float> &winoOutputKron(WinoVariant);
extern template const WinoKronPlan<double> &winoOutputKron(WinoVariant);
extern template const WinoKronPlan<std::int64_t> &
winoOutputKron(WinoVariant);
extern template const WinoKronPlan<double> &winoInputKronT(WinoVariant);
extern template const WinoKronPlan<double> &winoOutputKronT(WinoVariant);
extern template void applyKron(const WinoKronPlan<float> &,
                               const float *, std::size_t, float *);
extern template void applyKron(const WinoKronPlan<double> &,
                               const double *, std::size_t, double *);
extern template void applyKron(const WinoKronPlan<std::int32_t> &,
                               const std::int32_t *, std::size_t,
                               std::int32_t *);
extern template void applyKron(const WinoKronPlan<std::int64_t> &,
                               const std::int64_t *, std::size_t,
                               std::int64_t *);
extern template void winogradGatherTiles(const Tensor<float> &,
                                         WinoVariant, std::size_t,
                                         Tensor<float> &);
extern template void winogradGatherTiles(const Tensor<double> &,
                                         WinoVariant, std::size_t,
                                         Tensor<double> &);
extern template void winogradGatherTiles(const Tensor<std::int64_t> &,
                                         WinoVariant, std::size_t,
                                         Tensor<std::int64_t> &);
extern template void winogradScatterAddTiles(const Tensor<double> &,
                                             WinoVariant, std::size_t,
                                             Tensor<double> &);
extern template void winogradScatter(const Tensor<float> &, WinoVariant,
                                     std::size_t, Tensor<float> &,
                                     Tensor<float> &);
extern template void winogradScatter(const Tensor<double> &, WinoVariant,
                                     std::size_t, Tensor<double> &,
                                     Tensor<double> &);
extern template void winogradTapGemm(const WinogradTapWeights<float> &,
                                     const Tensor<float> &,
                                     Tensor<float> &,
                                     gemm::ParallelRunner *,
                                     gemm::PackPool *);
extern template void winogradTapGemm(const WinogradTapWeights<double> &,
                                     const Tensor<double> &,
                                     Tensor<double> &,
                                     gemm::ParallelRunner *,
                                     gemm::PackPool *);
extern template void winogradUntile(const Tensor<float> &, WinoVariant,
                                    Tensor<float> &, const float *,
                                    bool);
extern template void winogradUntile(const Tensor<double> &, WinoVariant,
                                    Tensor<double> &, const double *,
                                    bool);
extern template void winogradUntile(const Tensor<std::int64_t> &,
                                    WinoVariant, Tensor<std::int64_t> &,
                                    const std::int64_t *, bool);
extern template void winogradGather(const Tensor<float> &, WinoVariant,
                                    Tensor<float> &, Tensor<float> &,
                                    const float *, bool);
extern template void winogradGather(const Tensor<double> &, WinoVariant,
                                    Tensor<double> &, Tensor<double> &,
                                    const double *, bool);
extern template void
conv2dWinogradTiledInto(const Tensor<float> &,
                        const WinogradTapWeights<float> &, std::size_t,
                        Tensor<float> &, Tensor<float> &,
                        Tensor<float> &, Tensor<float> &,
                        Tensor<float> &, gemm::ParallelRunner *,
                        gemm::PackPool *, const float *, bool);
extern template void
conv2dWinogradTiledInto(const Tensor<double> &,
                        const WinogradTapWeights<double> &, std::size_t,
                        Tensor<double> &, Tensor<double> &,
                        Tensor<double> &, Tensor<double> &,
                        Tensor<double> &, gemm::ParallelRunner *,
                        gemm::PackPool *, const double *, bool);
extern template Tensor<float>
conv2dWinogradTiled(const Tensor<float> &,
                    const WinogradTapWeights<float> &, std::size_t);
extern template Tensor<double>
conv2dWinogradTiled(const Tensor<double> &,
                    const WinogradTapWeights<double> &, std::size_t);

} // namespace twq

#endif // TWQ_WINOGRAD_TILED_HH
