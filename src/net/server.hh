/**
 * @file
 * Nonblocking epoll TCP front door for the inference runtime.
 *
 * Architecture: one acceptor + N I/O event loops (level-triggered
 * epoll, all sockets nonblocking). The listen socket lives in loop 0;
 * accepted connections are assigned round-robin across loops and
 * never migrate, so each connection's read/parse/write path is
 * single-threaded by construction — only its outbound buffer is
 * shared (a worker thread appends the response, the owning loop
 * flushes it), guarded by a per-connection mutex and an eventfd wake.
 *
 * A connection speaks the length-prefixed binary protocol
 * (net/protocol.hh). Each decoded Infer frame is handed straight to
 * InferenceServer::submitCallback — the zero-future path — and the
 * response is encoded on the executing worker, so the network layer
 * adds no threads that block per request. Admission control is the
 * runtime's bounded-pending gate: a shed request is answered
 * immediately with Status::Shed instead of queueing, which is what
 * keeps the latency of admitted requests bounded under overload.
 *
 * The same port also answers plain-text HTTP GETs (sniffed from the
 * first bytes of a connection), a small introspection surface:
 *
 *   GET /metrics   Prometheus exposition of the inference server's
 *                  registry merged with the process-global one
 *                  (?compat=1 adds deprecated flat layer names)
 *   GET /statusz   JSON: build info, uptime, runtime/session config,
 *                  per-layer plan decisions with probe timings and
 *                  hardware-counter provenance
 *   GET /healthz   200 "ok" while serving, 503 "draining" once
 *                  shutdown began — the load-balancer eviction signal
 *   GET /tracez    JSON ring of slow-request span timelines (see
 *                  RuntimeConfig::slowTraceThresholdNs)
 *
 * shutdown() is a graceful drain: stop accepting, shed new requests,
 * wait for every admitted request's response bytes to reach the
 * socket (bounded by drainTimeoutMs), then close connections and
 * join the loops.
 */

#ifndef TWQ_NET_SERVER_HH
#define TWQ_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hh"
#include "runtime/server.hh"

namespace twq::net
{

/** Front-door sizing knobs. */
struct NetConfig
{
    /** TCP port to bind (0 = ephemeral; see NetServer::port()). */
    std::uint16_t port = 0;

    /** Bind address; default loopback-only. */
    std::string bindAddr = "127.0.0.1";

    /** Number of epoll event loops (connections sharded across). */
    std::size_t ioThreads = 1;

    /** Per-frame size ceiling handed to each FrameDecoder. */
    std::size_t maxFrameBytes = kDefaultMaxFrameBytes;

    /** listen(2) backlog. */
    int backlog = 128;

    /**
     * Graceful-drain bound: shutdown() force-closes connections
     * whose response bytes the peer has not read after this long.
     */
    int drainTimeoutMs = 5000;
};

class NetServer
{
  public:
    /**
     * `server` must outlive this NetServer. The NetServer does not
     * own the inference runtime — it is one front door among
     * possibly several (in-process submit() callers keep working).
     */
    NetServer(InferenceServer &server, const NetConfig &cfg);
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /**
     * Bind, listen, and start the I/O loops. Returns the bound port
     * (resolves an ephemeral cfg.port = 0). Throws via twq_fatal on
     * bind failure.
     */
    std::uint16_t start();

    /** Bound port after start(). */
    std::uint16_t port() const { return port_; }

    /** Graceful drain (idempotent). */
    void shutdown();

    /** Requests decoded off sockets (admitted + shed). */
    std::uint64_t requestsSeen() const;

  private:
    struct Conn;
    struct IoLoop;

    void loopMain(IoLoop &loop);
    void acceptReady(IoLoop &loop);
    void adoptConn(IoLoop &loop, const std::shared_ptr<Conn> &conn);
    void handleReadable(IoLoop &loop, const std::shared_ptr<Conn> &conn);
    void handleInfer(const std::shared_ptr<Conn> &conn, Frame frame);
    void handleHttp(const std::shared_ptr<Conn> &conn);
    /** Append bytes to conn's outbuf and try to flush (loop thread). */
    void queueAndFlush(const std::shared_ptr<Conn> &conn,
                       std::vector<std::uint8_t> bytes);
    /** Flush pending outbuf; updates epoll write interest. */
    void flushConn(IoLoop &loop, const std::shared_ptr<Conn> &conn);
    void closeConn(IoLoop &loop, const std::shared_ptr<Conn> &conn);
    void wake(IoLoop &loop);
    std::string metricsBody(bool includeCompat) const;
    std::string statuszBody() const;
    std::string tracezBody() const;

    InferenceServer &server_;
    NetConfig cfg_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::vector<std::unique_ptr<IoLoop>> loops_;
    std::atomic<std::size_t> nextLoop_{0};
    std::atomic<std::uint64_t> inflight_{0}; ///< admitted, not yet queued out
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::int64_t startedAtNs_ = 0; ///< steady-clock ns at start()
};

} // namespace twq::net

#endif // TWQ_NET_SERVER_HH
