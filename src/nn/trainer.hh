/**
 * @file
 * Mini-batch training loop with optional knowledge distillation.
 */

#ifndef TWQ_NN_TRAINER_HH
#define TWQ_NN_TRAINER_HH

#include "common/rng.hh"
#include "data/synthetic.hh"
#include "nn/layer.hh"
#include "nn/optim.hh"

namespace twq
{

/** Training hyperparameters. */
struct TrainConfig
{
    std::size_t epochs = 5;
    std::size_t batchSize = 16;
    double lr = 0.05;        ///< SGD learning rate
    double lrDecay = 0.7;    ///< multiplicative per-epoch decay
    double adamLr = 0.01;    ///< Adam lr for log2 thresholds
    double momentum = 0.9;
    double kdAlpha = 1.0;    ///< weight of CE vs KD (1 = no KD)
    double kdTemperature = 4.0;
    std::uint64_t seed = 99;
    bool verbose = false;
};

/** Trains one model, optionally distilling from a frozen teacher. */
class Trainer
{
  public:
    Trainer(Layer &model, const TrainConfig &cfg);

    /** Enable knowledge distillation from a frozen FP teacher. */
    void setTeacher(Layer *teacher) { teacher_ = teacher; }

    /** One epoch over shuffled minibatches; returns mean loss. */
    double trainEpoch(const Dataset &train);

    /** Top-1 accuracy on a dataset (eval mode). */
    double evaluate(const Dataset &data);

    /** Full schedule: epochs with lr decay; returns final val acc. */
    double fit(const Dataset &train, const Dataset &val);

  private:
    Layer &model_;
    TrainConfig cfg_;
    HybridOptimizer opt_;
    Layer *teacher_ = nullptr;
    Rng rng_;
};

} // namespace twq

#endif // TWQ_NN_TRAINER_HH
