#include "tensor/im2col.hh"

namespace twq
{

template <typename T>
Matrix<T>
im2col(const Tensor<T> &input, std::size_t n, const ConvParams &p)
{
    twq_assert(input.rank() == 4, "im2col expects NCHW");
    const std::size_t c = input.dim(1);
    const std::size_t h = input.dim(2);
    const std::size_t w = input.dim(3);
    const std::size_t ho = p.outSize(h);
    const std::size_t wo = p.outSize(w);
    const std::size_t k = p.kernel;

    Matrix<T> cols(c * k * k, ho * wo);
    for (std::size_t ic = 0; ic < c; ++ic) {
        for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
                const std::size_t row = (ic * k + ky) * k + kx;
                for (std::size_t oy = 0; oy < ho; ++oy) {
                    for (std::size_t ox = 0; ox < wo; ++ox) {
                        const std::ptrdiff_t iy =
                            static_cast<std::ptrdiff_t>(oy * p.stride + ky)
                            - static_cast<std::ptrdiff_t>(p.pad);
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * p.stride + kx)
                            - static_cast<std::ptrdiff_t>(p.pad);
                        T v{};
                        if (iy >= 0 && ix >= 0 &&
                            iy < static_cast<std::ptrdiff_t>(h) &&
                            ix < static_cast<std::ptrdiff_t>(w)) {
                            v = input.at(n, ic,
                                         static_cast<std::size_t>(iy),
                                         static_cast<std::size_t>(ix));
                        }
                        cols(row, oy * wo + ox) = v;
                    }
                }
            }
        }
    }
    return cols;
}

template <typename T>
Tensor<T>
conv2dIm2col(const Tensor<T> &input, const Tensor<T> &weights,
             const ConvParams &p)
{
    twq_assert(input.rank() == 4 && weights.rank() == 4,
               "conv2dIm2col expects NCHW input and OIKK weights");
    twq_assert(input.dim(1) == weights.dim(1),
               "channel mismatch between input and weights");
    const std::size_t n = input.dim(0);
    const std::size_t cout = weights.dim(0);
    const std::size_t cin = weights.dim(1);
    const std::size_t k = weights.dim(2);
    twq_assert(k == p.kernel && weights.dim(3) == k,
               "weight kernel size mismatch");
    const std::size_t ho = p.outSize(input.dim(2));
    const std::size_t wo = p.outSize(input.dim(3));

    // Flatten weights to [Cout, Cin*K*K].
    Matrix<T> wmat(cout, cin * k * k);
    for (std::size_t oc = 0; oc < cout; ++oc)
        for (std::size_t ic = 0; ic < cin; ++ic)
            for (std::size_t ky = 0; ky < k; ++ky)
                for (std::size_t kx = 0; kx < k; ++kx)
                    wmat(oc, (ic * k + ky) * k + kx) =
                        weights.at(oc, ic, ky, kx);

    Tensor<T> out({n, cout, ho, wo});
    for (std::size_t in = 0; in < n; ++in) {
        const Matrix<T> cols = im2col(input, in, p);
        const Matrix<T> res = matmul(wmat, cols);
        for (std::size_t oc = 0; oc < cout; ++oc)
            for (std::size_t oy = 0; oy < ho; ++oy)
                for (std::size_t ox = 0; ox < wo; ++ox)
                    out.at(in, oc, oy, ox) = res(oc, oy * wo + ox);
    }
    return out;
}

template <typename T>
Tensor<T>
conv2dDirect(const Tensor<T> &input, const Tensor<T> &weights,
             const ConvParams &p)
{
    twq_assert(input.rank() == 4 && weights.rank() == 4,
               "conv2dDirect expects NCHW input and OIKK weights");
    const std::size_t n = input.dim(0);
    const std::size_t cin = input.dim(1);
    const std::size_t h = input.dim(2);
    const std::size_t w = input.dim(3);
    const std::size_t cout = weights.dim(0);
    const std::size_t k = p.kernel;
    const std::size_t ho = p.outSize(h);
    const std::size_t wo = p.outSize(w);

    Tensor<T> out({n, cout, ho, wo});
    for (std::size_t in = 0; in < n; ++in) {
        for (std::size_t oc = 0; oc < cout; ++oc) {
            for (std::size_t oy = 0; oy < ho; ++oy) {
                for (std::size_t ox = 0; ox < wo; ++ox) {
                    T acc{};
                    for (std::size_t ic = 0; ic < cin; ++ic) {
                        for (std::size_t ky = 0; ky < k; ++ky) {
                            for (std::size_t kx = 0; kx < k; ++kx) {
                                const std::ptrdiff_t iy =
                                    static_cast<std::ptrdiff_t>(
                                        oy * p.stride + ky)
                                    - static_cast<std::ptrdiff_t>(p.pad);
                                const std::ptrdiff_t ix =
                                    static_cast<std::ptrdiff_t>(
                                        ox * p.stride + kx)
                                    - static_cast<std::ptrdiff_t>(p.pad);
                                if (iy < 0 || ix < 0 ||
                                    iy >= static_cast<std::ptrdiff_t>(h) ||
                                    ix >= static_cast<std::ptrdiff_t>(w))
                                    continue;
                                acc += input.at(in, ic,
                                           static_cast<std::size_t>(iy),
                                           static_cast<std::size_t>(ix)) *
                                       weights.at(oc, ic, ky, kx);
                            }
                        }
                    }
                    out.at(in, oc, oy, ox) = acc;
                }
            }
        }
    }
    return out;
}

template Matrix<float> im2col(const Tensor<float> &, std::size_t,
                              const ConvParams &);
template Matrix<double> im2col(const Tensor<double> &, std::size_t,
                               const ConvParams &);
template Tensor<float> conv2dIm2col(const Tensor<float> &,
                                    const Tensor<float> &,
                                    const ConvParams &);
template Tensor<double> conv2dIm2col(const Tensor<double> &,
                                     const Tensor<double> &,
                                     const ConvParams &);
template Tensor<float> conv2dDirect(const Tensor<float> &,
                                    const Tensor<float> &,
                                    const ConvParams &);
template Tensor<double> conv2dDirect(const Tensor<double> &,
                                     const Tensor<double> &,
                                     const ConvParams &);
template Tensor<std::int64_t> conv2dDirect(const Tensor<std::int64_t> &,
                                           const Tensor<std::int64_t> &,
                                           const ConvParams &);

} // namespace twq
