/**
 * @file
 * Integer-only tap-wise quantized Winograd convolution (Section III).
 *
 * Implements the paper's quantization scheme
 *
 *   y = A^T [ S_BG ⊙ Σ_Cin round(B^T x̂ B ⊘ S_B) ⊙ round(G f̂ G^T ⊘ S_G) ] A
 *
 * with per-tap scaling matrices S_B, S_G and S_BG = S_B ⊙ S_G. All
 * multiplications and the channel reduction run in the integer
 * domain; rescaling happens once, before the back-transformation.
 * Layer-wise (single-scalar) granularity reproduces the "traditional"
 * quantization that breaks F4 accuracy; tap-wise granularity is the
 * paper's contribution.
 */

#ifndef TWQ_QUANT_INT_WINOGRAD_HH
#define TWQ_QUANT_INT_WINOGRAD_HH

#include <vector>

#include "quant/scales.hh"
#include "tensor/tensor.hh"
#include "winograd/matrices.hh"

namespace twq
{

/** Configuration of the integer Winograd pipeline. */
struct IntWinogradConfig
{
    WinoVariant variant = WinoVariant::F4;
    int spatialBits = 8;   ///< activation/weight bits in spatial domain
    int winogradBits = 8;  ///< bits in the Winograd domain (8 or 10)
    QuantGranularity granularity = QuantGranularity::TapWise;
    bool pow2Scales = true; ///< restrict scales to powers of two
    std::size_t pad = 1;
};

/**
 * A quantized 3x3 convolution layer executing the integer Winograd
 * pipeline. Weights are transformed and quantized at construction
 * (the accelerator does this on the fly in MTE1); inputs are
 * quantized per call.
 */
class IntWinogradConv
{
  public:
    /**
     * @param weights     FP weights [Cout, Cin, 3, 3].
     * @param calibration sample input tensors (NCHW) used to
     *                    calibrate the activation and tap scales.
     * @param cfg         pipeline configuration.
     */
    IntWinogradConv(const TensorD &weights,
                    const std::vector<TensorD> &calibration,
                    const IntWinogradConfig &cfg);

    /** Run quantized inference; returns the dequantized FP output. */
    TensorD forward(const TensorD &input) const;

    /**
     * Fully integer inference path (requires pow2Scales): the S_BG
     * rescale, the output transform, and the final requantization to
     * int8 are carried out with integer adds and shifts only, the
     * way the FixPipe/Vector Unit does it on the accelerator.
     *
     * @param input     FP input (quantized internally with s_x).
     * @param out_scale output: the power-of-two scale of the
     *                  returned int8 tensor.
     * @param fuse_relu apply ReLU before requantization (the fused
     *                  activation of the FixPipe).
     */
    TensorI8 forwardInt8(const TensorD &input, double *out_scale,
                         bool fuse_relu = false) const;

    /** Input activation scale s_x (spatial domain). */
    double inputScale() const { return sx_; }

    /**
     * Per-tap input rescale factors S_B in the integer domain, i.e.
     * the divisor applied to B^T x̂ B before clamping to
     * `winogradBits`. Powers of two when pow2Scales is set.
     */
    const MatrixD &inputTapScale() const { return sb_; }

    /** Per-tap/channel weight scales S_G (Winograd domain). */
    const ScaleSet &weightScales() const { return wscales_; }

    /** Right-shift amounts log2(S_B) when scales are powers of two. */
    std::vector<int> inputShifts() const;

    const IntWinogradConfig &config() const { return cfg_; }

  private:
    IntWinogradConfig cfg_;
    std::size_t cout_;
    std::size_t cin_;
    double sx_ = 1.0;          ///< spatial activation scale
    MatrixD sb_;               ///< [t,t] integer-domain input divisors
    ScaleSet wscales_;         ///< Winograd-domain weight scales
    /// Quantized Winograd-domain weights, one [t,t] tile per
    /// (oc, ic), values in `winogradBits` range.
    std::vector<MatrixI64> wq_;
};

/** Relative L2 error ||a - b|| / ||b||; b is the reference. */
double relativeL2Error(const TensorD &a, const TensorD &b);

} // namespace twq

#endif // TWQ_QUANT_INT_WINOGRAD_HH
