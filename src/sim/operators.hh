/**
 * @file
 * Performance model of the Conv2D operators on the accelerator:
 * im2col (baseline), Winograd F2, and Winograd F4 with the Listing 1
 * dataflow (weight-stationary, transformed on the fly, triple-level
 * double buffering, iFM broadcast to both cores).
 *
 * The model is a steady-state tile pipeline: per layer it computes
 * the cycle cost of every pipeline stage (DRAM transfers, MTE1
 * transformations, Cube MatMul, Vector/FixPipe post-processing) and
 * takes the maximum as the steady-state bound, plus fill/drain and
 * per-block scheduling overheads. Memory traffic per level is
 * counted explicitly (Fig. 6) and feeds the energy model.
 */

#ifndef TWQ_SIM_OPERATORS_HH
#define TWQ_SIM_OPERATORS_HH

#include <string>

#include "sim/config.hh"

namespace twq
{

/** One Conv2D workload (per Table IV conventions H,W = output res). */
struct ConvWorkload
{
    std::size_t batch = 1;
    std::size_t hOut = 32;
    std::size_t wOut = 32;
    std::size_t cin = 64;
    std::size_t cout = 64;
    std::size_t kernel = 3;
    std::size_t stride = 1;

    /** Total MACs of this layer. */
    double
    macs() const
    {
        return static_cast<double>(batch) * hOut * wOut * cin * cout *
               kernel * kernel;
    }
};

/** Convolution algorithm executed by the accelerator. */
enum class OpKind
{
    Im2col,
    WinogradF2,
    WinogradF4,
};

const char *opKindName(OpKind k);

/** Byte counts per memory level for one operator execution. */
struct MemTraffic
{
    // External memory (whole system; broadcast counted once).
    double gmRdFm = 0.0;
    double gmRdWt = 0.0;
    double gmWr = 0.0;
    // L1 (per system).
    double l1WrFm = 0.0;
    double l1RdFm = 0.0;
    double l1WrWt = 0.0;
    double l1RdWt = 0.0;
    // L0 buffers.
    double l0aWr = 0.0;
    double l0aRd = 0.0;
    double l0bWr = 0.0;
    double l0bRd = 0.0;
    double l0cWr = 0.0;
    double l0cRdA = 0.0; ///< accumulation port
    double l0cRdB = 0.0; ///< FixPipe port
};

/** Per-stage cycle breakdown (the Fig. 5 categories). */
struct StageCycles
{
    double cube = 0.0;
    double inXform = 0.0;
    double outXform = 0.0;
    double wtXform = 0.0;
    double inLoad = 0.0;   ///< DRAM iFM transfer
    double wtLoad = 0.0;   ///< DRAM weight transfer
    double outStore = 0.0; ///< DRAM oFM transfer
    double vector = 0.0;   ///< Vector Unit / FixPipe
    double overhead = 0.0; ///< block scheduling + fill/drain

    double maxStage() const;
};

/** Result of simulating one operator execution. */
struct OpPerf
{
    OpKind kind = OpKind::Im2col;
    double cycles = 0.0;        ///< total execution cycles
    double cubeActiveCycles = 0.0;
    StageCycles stages;
    MemTraffic traffic;
    double timeUs(const AcceleratorConfig &cfg) const;
};

/**
 * Simulate one Conv2D layer on the 2-core system.
 *
 * Winograd kinds require kernel == 3 and stride == 1 (the network
 * runner routes other layers to im2col).
 */
OpPerf simulateConv(const ConvWorkload &w, OpKind kind,
                    const AcceleratorConfig &cfg);

} // namespace twq

#endif // TWQ_SIM_OPERATORS_HH
