/**
 * @file
 * Tests for the flat tap-major scatter–GEMM–gather Winograd pipeline
 * (winograd/tiled.hh) against the tile-at-a-time reference
 * implementations in winograd/conv.hh and direct convolution.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "tensor/im2col.hh"
#include "winograd/conv.hh"
#include "winograd/tiled.hh"

namespace twq
{
namespace
{

TensorD
randomTensor(const Shape &shape, std::uint64_t seed)
{
    TensorD t(shape);
    Rng rng(seed);
    rng.fillNormal(t.storage(), 0.0, 1.0);
    return t;
}

class TiledWinograd : public ::testing::TestWithParam<WinoVariant>
{};

TEST_P(TiledWinograd, MatchesDirectConvolution)
{
    const WinoVariant v = GetParam();
    // Ragged spatial sizes exercise partially filled edge tiles.
    const Shape shapes[] = {
        {1, 1, 4, 4}, {2, 3, 8, 8}, {1, 2, 5, 7}, {3, 4, 9, 6}};
    std::uint64_t seed = 100;
    for (const Shape &shape : shapes) {
        const TensorD x = randomTensor(shape, seed++);
        const TensorD w = randomTensor({5, shape[1], 3, 3}, seed++);
        const WinogradTapWeights<double> taps =
            winogradPrepareTapWeights(w, v);
        const TensorD y = conv2dWinogradTiled(x, taps, 1);
        const TensorD ref = conv2dDirect(x, w, ConvParams{3, 1, 1});
        ASSERT_EQ(y.shape(), ref.shape());
        for (std::size_t i = 0; i < y.numel(); ++i)
            EXPECT_NEAR(y[i], ref[i], 1e-9)
                << winoName(v) << " shape index " << i;
    }
}

TEST_P(TiledWinograd, MatchesTileAtATimeReference)
{
    const WinoVariant v = GetParam();
    const TensorD x = randomTensor({2, 3, 10, 10}, 7);
    const TensorD w = randomTensor({4, 3, 3, 3}, 8);
    const TensorD tiled =
        conv2dWinogradTiled(x, winogradPrepareTapWeights(w, v), 1);
    const TensorD ref =
        conv2dWinogradPre(x, winogradPrepareWeights(w, v), 1);
    ASSERT_EQ(tiled.shape(), ref.shape());
    // Same algorithm, different operation order: the Kronecker row
    // passes regroup the transform sums, so agreement is to rounding,
    // not bitwise.
    for (std::size_t i = 0; i < tiled.numel(); ++i)
        EXPECT_NEAR(tiled[i], ref[i], 1e-12);
}

TEST_P(TiledWinograd, ZeroPaddingVariant)
{
    const WinoVariant v = GetParam();
    const TensorD x = randomTensor({1, 2, 8, 8}, 21);
    const TensorD w = randomTensor({3, 2, 3, 3}, 22);
    const TensorD y =
        conv2dWinogradTiled(x, winogradPrepareTapWeights(w, v), 0);
    const TensorD ref = conv2dDirect(x, w, ConvParams{3, 1, 0});
    ASSERT_EQ(y.shape(), ref.shape());
    for (std::size_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-9);
}

TEST_P(TiledWinograd, TapMajorWeightsMatchPerTileWeights)
{
    const WinoVariant v = GetParam();
    const TensorD w = randomTensor({3, 2, 3, 3}, 31);
    const WinogradTapWeights<double> direct =
        winogradPrepareTapWeights(w, v);
    const WinogradTapWeights<double> relaid =
        tapMajorWeights(winogradPrepareWeights(w, v));
    ASSERT_EQ(direct.cout, relaid.cout);
    ASSERT_EQ(direct.cin, relaid.cin);
    ASSERT_EQ(direct.taps.size(), relaid.taps.size());
    for (std::size_t i = 0; i < direct.taps.size(); ++i)
        EXPECT_DOUBLE_EQ(direct.taps[i], relaid.taps[i]);
}

TEST_P(TiledWinograd, ScatterAddTilesIsGatherTranspose)
{
    // <V, gather(x)> == <scatterAdd(V), x> for random operands — the
    // adjoint identity the training backward relies on.
    const WinoVariant v = GetParam();
    const WinoDims d = winoDims({2, 3, 7, 9}, v, 1);
    const TensorD x = randomTensor({2, 3, 7, 9}, 41);
    TensorD V;
    winogradGatherTiles(x, v, 1, V);
    const TensorD r =
        randomTensor({d.t * d.t, d.cin, d.tiles}, 42);
    TensorD back({2, 3, 7, 9});
    winogradScatterAddTiles(r, v, 1, back);
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < V.numel(); ++i)
        lhs += V[i] * r[i];
    for (std::size_t i = 0; i < x.numel(); ++i)
        rhs += back[i] * x[i];
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, std::abs(lhs)));
}

TEST_P(TiledWinograd, KronPlansSkipZeroCoefficients)
{
    const WinoVariant v = GetParam();
    const WinoSpec spec = winoSpec(v);
    const auto &in = winoInputKron<double>(v);
    const auto &out = winoOutputKron<double>(v);
    EXPECT_EQ(in.rowsOut, spec.t * spec.t);
    EXPECT_EQ(in.rowsIn, spec.t * spec.t);
    EXPECT_EQ(out.rowsOut, spec.m * spec.m);
    EXPECT_EQ(out.rowsIn, spec.t * spec.t);
    // B^T and A^T are roughly half zeros; the schedule must be much
    // smaller than the dense Kronecker product.
    EXPECT_LT(in.terms.size(), in.rowsOut * in.rowsIn);
    for (const auto &term : in.terms)
        EXPECT_NE(term.coeff, 0.0);
}

TEST_P(TiledWinograd, FloatInstantiationStaysClose)
{
    const WinoVariant v = GetParam();
    const TensorD x = randomTensor({1, 2, 6, 6}, 51);
    const TensorD w = randomTensor({2, 2, 3, 3}, 52);
    const TensorF xf = x.cast<float>();
    const TensorF wf = w.cast<float>();
    const TensorF y =
        conv2dWinogradTiled(xf, winogradPrepareTapWeights(wf, v), 1);
    const TensorD ref = conv2dDirect(x, w, ConvParams{3, 1, 1});
    for (std::size_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(static_cast<double>(y[i]), ref[i], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Variants, TiledWinograd,
                         ::testing::Values(WinoVariant::F2,
                                           WinoVariant::F4,
                                           WinoVariant::F6),
                         [](const auto &info) {
                             return winoName(info.param);
                         });

} // namespace
} // namespace twq
