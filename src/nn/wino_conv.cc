#include "nn/wino_conv.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/im2col.hh"
#include "winograd/conv.hh"
#include "winograd/transforms.hh"

namespace twq
{

namespace
{

constexpr double kCalMomentum = 0.9;

/** EMA update of a per-tap maxima matrix. */
void
emaUpdate(MatrixD &cal, const MatrixD &batch_max, bool seeded)
{
    for (std::size_t i = 0; i < cal.rows(); ++i) {
        for (std::size_t j = 0; j < cal.cols(); ++j) {
            if (!seeded)
                cal(i, j) = batch_max(i, j);
            else
                cal(i, j) = kCalMomentum * cal(i, j) +
                            (1.0 - kCalMomentum) * batch_max(i, j);
        }
    }
}

} // namespace

WinogradConv2d::WinogradConv2d(std::size_t cin, std::size_t cout,
                               const WinoConvConfig &cfg, Rng &rng)
    : cfg_(cfg), cin_(cin), cout_(cout),
      t_(winoSpec(cfg.variant).t), m_(winoSpec(cfg.variant).m),
      w_({cout, cin, 3, 3}, "winoconv.w"),
      logSg_({t_ * t_}, "winoconv.logSg"),
      logSb_({t_ * t_}, "winoconv.logSb"),
      calG_(t_, t_), calB_(t_, t_)
{
    const double std = std::sqrt(2.0 / static_cast<double>(cin * 9));
    for (std::size_t i = 0; i < w_.value.numel(); ++i)
        w_.value[i] = rng.normal(0.0, std);
    logSg_.useAdam = true;
    logSb_.useAdam = true;
}

double
WinogradConv2d::tapScale(bool for_weights, std::size_t i,
                         std::size_t j) const
{
    const std::size_t flat = i * t_ + j;
    double s;
    if (cfg_.learnScales) {
        const double lt = for_weights ? logSg_.value[flat]
                                      : logSb_.value[flat];
        s = cfg_.pow2 ? std::exp2(std::ceil(lt)) : std::exp2(lt);
    } else {
        const MatrixD &cal = for_weights ? calG_ : calB_;
        double m = cal(i, j);
        if (!cfg_.tapWise) {
            for (std::size_t a = 0; a < t_; ++a)
                for (std::size_t b = 0; b < t_; ++b)
                    m = std::max(m, cal(a, b));
        }
        s = scaleForMax(m, cfg_.winogradBits);
        if (cfg_.pow2)
            s = pow2Ceil(s);
    }
    return s;
}

double
WinogradConv2d::quantValue(double v, double s, int bits, bool *in_range,
                           double *log_grad) const
{
    const double r = v / s;
    const double lo = static_cast<double>(quantMin(bits));
    const double hi = static_cast<double>(quantMax(bits));
    const double rq = std::nearbyint(r);
    const bool inside = rq >= lo && rq <= hi;
    const double rc = std::clamp(rq, lo, hi);
    if (in_range)
        *in_range = inside;
    if (log_grad) {
        // Eq. (3): d q / d log2(t) = s ln2 * clamp(round(r) - r | rc).
        const double term = inside ? (rq - r) : rc;
        *log_grad = s * std::numbers::ln2 * term;
    }
    return s * rc;
}

TensorD
WinogradConv2d::forward(const TensorD &x, bool train)
{
    twq_assert(x.rank() == 4 && x.dim(1) == cin_,
               "WinogradConv2d expects NCHW with matching channels");
    const ConvParams p{3, 1, 1};
    in_shape_ = x.shape();
    const std::size_t n = x.dim(0);
    ho_ = p.outSize(x.dim(2));
    wo_ = p.outSize(x.dim(3));
    tiles_y_ = (ho_ + m_ - 1) / m_;
    tiles_x_ = (wo_ + m_ - 1) / m_;

    // ---- spatial input quantization ----
    TensorD xq = x;
    if (cfg_.quantize && cfg_.quantizeSpatial) {
        if (train) {
            double mx = 0.0;
            for (std::size_t i = 0; i < x.numel(); ++i)
                mx = std::max(mx, std::abs(x[i]));
            xcal_.observe(mx);
        }
        sx_ = xcal_.scale(cfg_.spatialBits);
        if (cfg_.pow2)
            sx_ = pow2Ceil(sx_);
        if (train)
            x_spatial_mask_ = TensorD(x.shape());
        for (std::size_t i = 0; i < x.numel(); ++i) {
            bool inside = true;
            xq[i] = quantValue(x[i], sx_, cfg_.spatialBits, &inside,
                               nullptr);
            if (train)
                x_spatial_mask_[i] = inside ? 1.0 : 0.0;
        }
    } else if (train) {
        x_spatial_mask_ = TensorD(x.shape(), 1.0);
    }

    // ---- weight transform ----
    const MatrixD g = winoGd(cfg_.variant);
    const MatrixD gt = g.transposed();
    wxf_raw_.assign(cout_ * cin_, MatrixD());
    for (std::size_t oc = 0; oc < cout_; ++oc) {
        for (std::size_t ic = 0; ic < cin_; ++ic) {
            MatrixD f(3, 3);
            for (std::size_t ky = 0; ky < 3; ++ky)
                for (std::size_t kx = 0; kx < 3; ++kx)
                    f(ky, kx) = w_.value.at(oc, ic, ky, kx);
            wxf_raw_[oc * cin_ + ic] = matmul(matmul(g, f), gt);
        }
    }

    // ---- transform inputs ----
    const MatrixD bt = winoBTd(cfg_.variant);
    const MatrixD b = bt.transposed();
    const std::size_t n_tiles = n * tiles_y_ * tiles_x_;
    std::vector<MatrixD> ixf_raw(n_tiles * cin_);
    for (std::size_t in = 0; in < n; ++in) {
        for (std::size_t ty = 0; ty < tiles_y_; ++ty) {
            for (std::size_t tx = 0; tx < tiles_x_; ++tx) {
                const std::size_t tile_idx =
                    (in * tiles_y_ + ty) * tiles_x_ + tx;
                for (std::size_t ic = 0; ic < cin_; ++ic) {
                    const MatrixD tile = extractInputTile(
                        xq, in, ic, ty, tx, cfg_.variant, p.pad);
                    ixf_raw[tile_idx * cin_ + ic] =
                        matmul(matmul(bt, tile), b);
                }
            }
        }
    }

    // ---- calibration / scale initialization ----
    if (cfg_.quantize && train && !cfg_.learnScales) {
        MatrixD gmax(t_, t_), bmax(t_, t_);
        for (const auto &w : wxf_raw_)
            for (std::size_t i = 0; i < t_; ++i)
                for (std::size_t j = 0; j < t_; ++j)
                    gmax(i, j) = std::max(gmax(i, j),
                                          std::abs(w(i, j)));
        for (const auto &xt : ixf_raw)
            for (std::size_t i = 0; i < t_; ++i)
                for (std::size_t j = 0; j < t_; ++j)
                    bmax(i, j) = std::max(bmax(i, j),
                                          std::abs(xt(i, j)));
        emaUpdate(calG_, gmax, scalesInitialized_);
        emaUpdate(calB_, bmax, scalesInitialized_);
        scalesInitialized_ = true;
    }
    if (cfg_.quantize && cfg_.learnScales && !scalesInitialized_) {
        // Seed the learned thresholds from the first batch.
        MatrixD gmax(t_, t_), bmax(t_, t_);
        for (const auto &w : wxf_raw_)
            for (std::size_t i = 0; i < t_; ++i)
                for (std::size_t j = 0; j < t_; ++j)
                    gmax(i, j) = std::max(gmax(i, j),
                                          std::abs(w(i, j)));
        for (const auto &xt : ixf_raw)
            for (std::size_t i = 0; i < t_; ++i)
                for (std::size_t j = 0; j < t_; ++j)
                    bmax(i, j) = std::max(bmax(i, j),
                                          std::abs(xt(i, j)));
        double gall = 0.0, ball = 0.0;
        for (std::size_t i = 0; i < t_; ++i) {
            for (std::size_t j = 0; j < t_; ++j) {
                gall = std::max(gall, gmax(i, j));
                ball = std::max(ball, bmax(i, j));
            }
        }
        for (std::size_t i = 0; i < t_; ++i) {
            for (std::size_t j = 0; j < t_; ++j) {
                const double gm = cfg_.tapWise ? gmax(i, j) : gall;
                const double bm = cfg_.tapWise ? bmax(i, j) : ball;
                logSg_.value[i * t_ + j] = std::log2(
                    scaleForMax(gm > 0 ? gm : 1.0, cfg_.winogradBits));
                logSb_.value[i * t_ + j] = std::log2(
                    scaleForMax(bm > 0 ? bm : 1.0, cfg_.winogradBits));
            }
        }
        scalesInitialized_ = true;
    }

    // ---- fake-quantize weights and inputs ----
    const bool q = cfg_.quantize && scalesInitialized_;
    wxf_q_ = wxf_raw_;
    if (train) {
        wxf_mask_.assign(cout_ * cin_, MatrixD(t_, t_));
        wxf_lgrad_.assign(cout_ * cin_, MatrixD(t_, t_));
    }
    if (q) {
        for (std::size_t k = 0; k < cout_ * cin_; ++k) {
            for (std::size_t i = 0; i < t_; ++i) {
                for (std::size_t j = 0; j < t_; ++j) {
                    bool inside = true;
                    double lgrad = 0.0;
                    wxf_q_[k](i, j) = quantValue(
                        wxf_raw_[k](i, j), tapScale(true, i, j),
                        cfg_.winogradBits, &inside, &lgrad);
                    if (train) {
                        wxf_mask_[k](i, j) = inside ? 1.0 : 0.0;
                        wxf_lgrad_[k](i, j) = lgrad;
                    }
                }
            }
        }
    } else if (train) {
        for (auto &mk : wxf_mask_)
            for (std::size_t i = 0; i < t_; ++i)
                for (std::size_t j = 0; j < t_; ++j)
                    mk(i, j) = 1.0;
    }

    ixf_q_ = std::move(ixf_raw);
    if (train) {
        ixf_mask_.assign(n_tiles * cin_, MatrixD(t_, t_));
        ixf_lgrad_.assign(n_tiles * cin_, MatrixD(t_, t_));
    }
    if (q) {
        for (std::size_t k = 0; k < ixf_q_.size(); ++k) {
            for (std::size_t i = 0; i < t_; ++i) {
                for (std::size_t j = 0; j < t_; ++j) {
                    bool inside = true;
                    double lgrad = 0.0;
                    const double raw = ixf_q_[k](i, j);
                    ixf_q_[k](i, j) = quantValue(
                        raw, tapScale(false, i, j), cfg_.winogradBits,
                        &inside, &lgrad);
                    if (train) {
                        ixf_mask_[k](i, j) = inside ? 1.0 : 0.0;
                        ixf_lgrad_[k](i, j) = lgrad;
                    }
                }
            }
        }
    } else if (train) {
        for (auto &mk : ixf_mask_)
            for (std::size_t i = 0; i < t_; ++i)
                for (std::size_t j = 0; j < t_; ++j)
                    mk(i, j) = 1.0;
    }

    // ---- elementwise product + output transform ----
    const MatrixD at = winoATd(cfg_.variant);
    const MatrixD a = at.transposed();
    TensorD out({n, cout_, ho_, wo_});
    for (std::size_t in = 0; in < n; ++in) {
        for (std::size_t ty = 0; ty < tiles_y_; ++ty) {
            for (std::size_t tx = 0; tx < tiles_x_; ++tx) {
                const std::size_t tile_idx =
                    (in * tiles_y_ + ty) * tiles_x_ + tx;
                for (std::size_t oc = 0; oc < cout_; ++oc) {
                    MatrixD acc(t_, t_);
                    for (std::size_t ic = 0; ic < cin_; ++ic) {
                        const auto &wt = wxf_q_[oc * cin_ + ic];
                        const auto &it = ixf_q_[tile_idx * cin_ + ic];
                        for (std::size_t i = 0; i < t_; ++i)
                            for (std::size_t j = 0; j < t_; ++j)
                                acc(i, j) += wt(i, j) * it(i, j);
                    }
                    const MatrixD res = matmul(matmul(at, acc), a);
                    for (std::size_t y = 0; y < m_; ++y) {
                        for (std::size_t xx = 0; xx < m_; ++xx) {
                            const std::size_t oy = ty * m_ + y;
                            const std::size_t ox = tx * m_ + xx;
                            if (oy < ho_ && ox < wo_)
                                out.at(in, oc, oy, ox) = res(y, xx);
                        }
                    }
                }
            }
        }
    }
    if (!train) {
        // Free training caches eagerly in eval mode.
        wxf_mask_.clear();
        wxf_lgrad_.clear();
        ixf_mask_.clear();
        ixf_lgrad_.clear();
    }
    return out;
}

TensorD
WinogradConv2d::backward(const TensorD &grad_out)
{
    const std::size_t n = in_shape_[0];
    const MatrixD at = winoATd(cfg_.variant);
    const MatrixD a_full = at.transposed(); // t x m
    const MatrixD bt = winoBTd(cfg_.variant);
    const MatrixD b_full = bt.transposed(); // t x t
    const MatrixD g = winoGd(cfg_.variant);

    TensorD gin(in_shape_);
    std::vector<MatrixD> dw_wino(cout_ * cin_, MatrixD(t_, t_));

    for (std::size_t in = 0; in < n; ++in) {
        for (std::size_t ty = 0; ty < tiles_y_; ++ty) {
            for (std::size_t tx = 0; tx < tiles_x_; ++tx) {
                const std::size_t tile_idx =
                    (in * tiles_y_ + ty) * tiles_x_ + tx;
                // Gather dOut for this tile (zero beyond the edge).
                std::vector<MatrixD> dx_hat(cin_, MatrixD(t_, t_));
                for (std::size_t oc = 0; oc < cout_; ++oc) {
                    MatrixD dout(m_, m_);
                    bool any = false;
                    for (std::size_t y = 0; y < m_; ++y) {
                        for (std::size_t xx = 0; xx < m_; ++xx) {
                            const std::size_t oy = ty * m_ + y;
                            const std::size_t ox = tx * m_ + xx;
                            if (oy < ho_ && ox < wo_) {
                                dout(y, xx) =
                                    grad_out.at(in, oc, oy, ox);
                                any |= dout(y, xx) != 0.0;
                            }
                        }
                    }
                    if (!any)
                        continue;
                    // dY = A dOut A^T with A = (A^T)^T (t x m).
                    const MatrixD dy =
                        matmul(matmul(a_full, dout), at);
                    for (std::size_t ic = 0; ic < cin_; ++ic) {
                        const auto &wt = wxf_q_[oc * cin_ + ic];
                        const auto &it = ixf_q_[tile_idx * cin_ + ic];
                        auto &dw = dw_wino[oc * cin_ + ic];
                        auto &dx = dx_hat[ic];
                        for (std::size_t i = 0; i < t_; ++i) {
                            for (std::size_t j = 0; j < t_; ++j) {
                                dw(i, j) += dy(i, j) * it(i, j);
                                dx(i, j) += dy(i, j) * wt(i, j);
                            }
                        }
                    }
                }
                // Input side: STE mask, learned-scale grads, then
                // back through B^T x B and scatter into gin.
                for (std::size_t ic = 0; ic < cin_; ++ic) {
                    MatrixD &dx = dx_hat[ic];
                    if (cfg_.quantize && scalesInitialized_) {
                        const auto &mask =
                            ixf_mask_[tile_idx * cin_ + ic];
                        if (cfg_.learnScales) {
                            const auto &lg =
                                ixf_lgrad_[tile_idx * cin_ + ic];
                            for (std::size_t i = 0; i < t_; ++i)
                                for (std::size_t j = 0; j < t_; ++j)
                                    logSb_.grad[i * t_ + j] +=
                                        dx(i, j) * lg(i, j);
                        }
                        for (std::size_t i = 0; i < t_; ++i)
                            for (std::size_t j = 0; j < t_; ++j)
                                dx(i, j) *= mask(i, j);
                    }
                    const MatrixD dtile =
                        matmul(matmul(b_full, dx), bt);
                    // Scatter-add into the padded input window.
                    const std::ptrdiff_t y0 =
                        static_cast<std::ptrdiff_t>(ty * m_) - 1;
                    const std::ptrdiff_t x0 =
                        static_cast<std::ptrdiff_t>(tx * m_) - 1;
                    for (std::size_t i = 0; i < t_; ++i) {
                        for (std::size_t j = 0; j < t_; ++j) {
                            const std::ptrdiff_t iy =
                                y0 + static_cast<std::ptrdiff_t>(i);
                            const std::ptrdiff_t ix =
                                x0 + static_cast<std::ptrdiff_t>(j);
                            if (iy < 0 || ix < 0 ||
                                iy >= static_cast<std::ptrdiff_t>(
                                          in_shape_[2]) ||
                                ix >= static_cast<std::ptrdiff_t>(
                                          in_shape_[3]))
                                continue;
                            gin.at(in, ic,
                                   static_cast<std::size_t>(iy),
                                   static_cast<std::size_t>(ix)) +=
                                dtile(i, j);
                        }
                    }
                }
            }
        }
    }

    // Weight side: STE mask, learned-scale grads, then back through
    // G f G^T.
    for (std::size_t oc = 0; oc < cout_; ++oc) {
        for (std::size_t ic = 0; ic < cin_; ++ic) {
            MatrixD &dw = dw_wino[oc * cin_ + ic];
            if (cfg_.quantize && scalesInitialized_) {
                const auto &mask = wxf_mask_[oc * cin_ + ic];
                if (cfg_.learnScales) {
                    const auto &lg = wxf_lgrad_[oc * cin_ + ic];
                    for (std::size_t i = 0; i < t_; ++i)
                        for (std::size_t j = 0; j < t_; ++j)
                            logSg_.grad[i * t_ + j] +=
                                dw(i, j) * lg(i, j);
                }
                for (std::size_t i = 0; i < t_; ++i)
                    for (std::size_t j = 0; j < t_; ++j)
                        dw(i, j) *= mask(i, j);
            }
            // df = G^T dW G.
            const MatrixD df =
                matmul(matmul(g.transposed(), dw), g);
            for (std::size_t ky = 0; ky < 3; ++ky)
                for (std::size_t kx = 0; kx < 3; ++kx)
                    w_.grad.at(oc, ic, ky, kx) += df(ky, kx);
        }
    }

    // Spatial quantization STE.
    if (cfg_.quantize && cfg_.quantizeSpatial)
        for (std::size_t i = 0; i < gin.numel(); ++i)
            gin[i] *= x_spatial_mask_[i];
    return gin;
}

std::vector<Param *>
WinogradConv2d::params()
{
    std::vector<Param *> ps{&w_};
    if (cfg_.quantize && cfg_.learnScales) {
        ps.push_back(&logSg_);
        ps.push_back(&logSb_);
    }
    return ps;
}

MatrixD
WinogradConv2d::weightTapScales() const
{
    MatrixD s(t_, t_);
    for (std::size_t i = 0; i < t_; ++i)
        for (std::size_t j = 0; j < t_; ++j)
            s(i, j) = tapScale(true, i, j);
    return s;
}

MatrixD
WinogradConv2d::inputTapScales() const
{
    MatrixD s(t_, t_);
    for (std::size_t i = 0; i < t_; ++i)
        for (std::size_t j = 0; j < t_; ++j)
            s(i, j) = tapScale(false, i, j);
    return s;
}

} // namespace twq
