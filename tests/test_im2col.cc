/**
 * @file
 * Unit tests for im2col lowering and the reference convolutions.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/im2col.hh"

namespace twq
{
namespace
{

TensorD
randomTensor(const Shape &shape, std::uint64_t seed)
{
    Rng rng(seed);
    TensorD t(shape);
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = rng.normal();
    return t;
}

TEST(ConvParams, OutSize)
{
    ConvParams p{3, 1, 1};
    EXPECT_EQ(p.outSize(32), 32u); // "same" conv
    ConvParams q{3, 2, 1};
    EXPECT_EQ(q.outSize(32), 16u);
    ConvParams r{3, 1, 0};
    EXPECT_EQ(r.outSize(32), 30u); // "valid" conv
}

TEST(Im2col, ShapeForSameConv)
{
    TensorD in({1, 3, 8, 8});
    const MatrixD cols = im2col(in, 0, ConvParams{3, 1, 1});
    EXPECT_EQ(cols.rows(), 27u);
    EXPECT_EQ(cols.cols(), 64u);
}

TEST(Im2col, PaddingReadsZero)
{
    TensorD in({1, 1, 3, 3}, 1.0);
    const MatrixD cols = im2col(in, 0, ConvParams{3, 1, 1});
    // The top-left output position, kernel tap (0,0) reads the padded
    // corner which must be zero.
    EXPECT_DOUBLE_EQ(cols(0, 0), 0.0);
    // Center tap (1,1) of the top-left output reads input (0,0) = 1.
    EXPECT_DOUBLE_EQ(cols(4, 0), 1.0);
}

TEST(Im2col, IdentityKernelConv)
{
    // A kernel that is 1 at its center reproduces the input.
    TensorD in = randomTensor({1, 1, 6, 6}, 1);
    TensorD w({1, 1, 3, 3});
    w.at(0u, 0u, 1u, 1u) = 1.0;
    const TensorD out = conv2dIm2col(in, w, ConvParams{3, 1, 1});
    for (std::size_t y = 0; y < 6; ++y)
        for (std::size_t x = 0; x < 6; ++x)
            EXPECT_DOUBLE_EQ(out.at(0u, 0u, y, x), in.at(0u, 0u, y, x));
}

TEST(Im2col, MatchesDirectStride1)
{
    const TensorD in = randomTensor({2, 3, 9, 9}, 2);
    const TensorD w = randomTensor({4, 3, 3, 3}, 3);
    const ConvParams p{3, 1, 1};
    const TensorD a = conv2dIm2col(in, w, p);
    const TensorD b = conv2dDirect(in, w, p);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.numel(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Im2col, MatchesDirectStride2)
{
    const TensorD in = randomTensor({1, 2, 8, 8}, 4);
    const TensorD w = randomTensor({3, 2, 3, 3}, 5);
    const ConvParams p{3, 2, 1};
    const TensorD a = conv2dIm2col(in, w, p);
    const TensorD b = conv2dDirect(in, w, p);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.numel(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Im2col, MatchesDirectNoPad)
{
    const TensorD in = randomTensor({1, 2, 7, 7}, 6);
    const TensorD w = randomTensor({2, 2, 3, 3}, 7);
    const ConvParams p{3, 1, 0};
    const TensorD a = conv2dIm2col(in, w, p);
    const TensorD b = conv2dDirect(in, w, p);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.numel(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Im2col, MatchesDirect1x1Kernel)
{
    const TensorD in = randomTensor({1, 4, 5, 5}, 8);
    const TensorD w = randomTensor({6, 4, 1, 1}, 9);
    const ConvParams p{1, 1, 0};
    const TensorD a = conv2dIm2col(in, w, p);
    const TensorD b = conv2dDirect(in, w, p);
    for (std::size_t i = 0; i < a.numel(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Im2col, NonSquareInput)
{
    const TensorD in = randomTensor({1, 2, 6, 10}, 10);
    const TensorD w = randomTensor({2, 2, 3, 3}, 11);
    const ConvParams p{3, 1, 1};
    const TensorD a = conv2dIm2col(in, w, p);
    const TensorD b = conv2dDirect(in, w, p);
    ASSERT_EQ(a.dim(2), 6u);
    ASSERT_EQ(a.dim(3), 10u);
    for (std::size_t i = 0; i < a.numel(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
}

} // namespace
} // namespace twq
