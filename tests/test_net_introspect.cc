/**
 * @file
 * End-to-end observability over the wire: the timed-request protocol
 * extension (server-side queue/batch/compute breakdown bounded by the
 * client's measured RTT), request-scoped trace flows (one trace id
 * spanning net ingress, batcher, worker, and backend stages in the
 * emitted Perfetto JSON), and the HTTP introspection endpoints
 * (/statusz, /healthz, /tracez, /metrics label conversion + compat).
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "models/zoo.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/server.hh"

using namespace twq;
using net::Frame;
using net::Status;

namespace
{

std::shared_ptr<const Session>
makeSession()
{
    SessionConfig scfg;
    scfg.defaultEngine = ConvEngine::WinogradFp32;
    return std::make_shared<const Session>(microServeNet(10, 6), scfg);
}

TensorD
makeInput(const Shape &shape, std::uint64_t seed)
{
    TensorD t(shape);
    Rng rng(seed);
    rng.fillNormal(t.storage(), 0.0, 1.0);
    return t;
}

/** Session + InferenceServer + NetServer on an ephemeral port. */
struct Loopback
{
    std::shared_ptr<const Session> session = makeSession();
    InferenceServer server;
    net::NetServer front;
    std::uint16_t port = 0;

    explicit Loopback(RuntimeConfig rcfg = {},
                      net::NetConfig ncfg = {})
        : server(session, rcfg), front(server, ncfg)
    {
        port = front.start();
    }

    ~Loopback()
    {
        front.shutdown();
        server.shutdown();
    }
};

/** Parse the first integer after `key` following `from` in `doc`. */
std::uint64_t
numberAfter(const std::string &doc, const std::string &key,
            std::size_t from = 0)
{
    const std::size_t at = doc.find(key, from);
    if (at == std::string::npos)
        return 0;
    return std::stoull(doc.substr(at + key.size()));
}

} // namespace

TEST(NetIntrospect, TimedInferBreakdownBoundedByRtt)
{
    RuntimeConfig rcfg;
    rcfg.threads = 2;
    Loopback lb(rcfg);
    net::Client client;
    client.connect("127.0.0.1", lb.port);

    const TensorD in = makeInput(lb.session->inputShape(), 1);
    const TensorD local = lb.server.submit(in).get();
    for (int i = 0; i < 4; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        const Frame f = client.inferTimed(in);
        const auto rttNs =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        ASSERT_EQ(f.status, Status::Ok);
        ASSERT_TRUE(f.timed);
        // The three phases partition enqueue-to-respond exactly, and
        // that window sits strictly inside the client's measured
        // round trip — the breakdown lets a client attribute wire
        // RTT to server phases vs network/encode overhead.
        const std::uint64_t serverNs =
            f.queueNs + f.batchNs + f.computeNs;
        EXPECT_GT(f.computeNs, 0u);
        EXPECT_LE(serverNs, static_cast<std::uint64_t>(rttNs));
        // Same bytes as the untimed path and in-process submit.
        ASSERT_EQ(f.data.size(), local.storage().size());
        EXPECT_EQ(std::memcmp(f.data.data(), local.storage().data(),
                              f.data.size() * sizeof(double)),
                  0);
    }
    // Untimed requests on the same connection still answer in the
    // untimed dialect.
    const Frame plain = client.infer(in);
    ASSERT_EQ(plain.status, Status::Ok);
    EXPECT_FALSE(plain.timed);
}

TEST(NetIntrospect, TimedDialectSurvivesErrors)
{
    Loopback lb;
    net::Client client;
    client.connect("127.0.0.1", lb.port);

    // Wrong shape: the server must answer a TIMED request with a
    // TIMED response even on failure (zeroed breakdown), so a client
    // waiting on inferTimed never trips on the response type.
    TensorD bad({1, 2, 3, 3}, 0.0);
    const Frame f = client.inferTimed(bad);
    EXPECT_EQ(f.status, Status::BadRequest);
    ASSERT_TRUE(f.timed);
    EXPECT_EQ(f.queueNs, 0u);
    EXPECT_EQ(f.computeNs, 0u);

    // The connection survives and serves a good request after.
    const TensorD in = makeInput(lb.session->inputShape(), 2);
    EXPECT_EQ(client.inferTimed(in).status, Status::Ok);
}

TEST(NetIntrospect, TracedRequestFormsOneFlowAcrossLayers)
{
    if constexpr (!obs::kEnabled)
        GTEST_SKIP() << "built with TWQ_NO_OBS";

    obs::TraceCollector::global().reset();
    obs::TraceCollector::global().enable();
    std::string doc;
    {
        // One worker: batches execute strictly sequentially, so by
        // the time the SECOND request's response arrives the first
        // batch's spans are certainly closed and flushable. The
        // assertions below target the FIRST request's flow.
        RuntimeConfig rcfg;
        rcfg.threads = 1;
        Loopback lb(rcfg);
        net::Client client;
        client.connect("127.0.0.1", lb.port);
        const TensorD in = makeInput(lb.session->inputShape(), 3);
        ASSERT_EQ(client.inferTimed(in).status, Status::Ok);
        ASSERT_EQ(client.inferTimed(in).status, Status::Ok);
        // Flush while the session is alive: span names include
        // session-interned layer names, and the ring stores pointers
        // (the documented lifetime contract of the tracer).
        doc = obs::TraceCollector::global().json();
    }

    // The ingress span carries the request's minted trace id...
    const std::size_t ingress = doc.find("\"name\":\"net.ingress\"");
    ASSERT_NE(ingress, std::string::npos);
    const std::uint64_t id =
        numberAfter(doc, "\"trace_id\":", ingress);
    ASSERT_NE(id, 0u);

    // ...and the SAME id appears on spans recorded by other threads
    // down the pipeline: the batcher/worker (server.batch) and the
    // response encode (net.respond). That is the cross-thread
    // attribution claim — one flow per request.
    const std::string tagged =
        "\"trace_id\":" + std::to_string(id) + "}";
    std::size_t occurrences = 0;
    for (std::size_t at = doc.find(tagged); at != std::string::npos;
         at = doc.find(tagged, at + 1))
        ++occurrences;
    EXPECT_GE(occurrences, 3u);
    const std::size_t batch = doc.find("\"name\":\"server.batch\"");
    ASSERT_NE(batch, std::string::npos);
    EXPECT_EQ(numberAfter(doc, "\"trace_id\":", batch), id);
    const std::size_t respond = doc.find("\"name\":\"net.respond\"");
    ASSERT_NE(respond, std::string::npos);
    EXPECT_EQ(numberAfter(doc, "\"trace_id\":", respond), id);

    // Perfetto flow rendering: a flow start and a terminating flow
    // end bound to this id.
    const std::string flowStart =
        "{\"ph\":\"s\",\"cat\":\"request\",\"name\":\"req\",\"id\":" +
        std::to_string(id);
    EXPECT_NE(doc.find(flowStart), std::string::npos);
    EXPECT_NE(doc.find("\"bp\":\"e\""), std::string::npos);
}

TEST(NetIntrospect, StatuszReportsPlansAndHealthzFlips)
{
    Loopback lb;
    // A request so stats are nonzero.
    net::Client client;
    client.connect("127.0.0.1", lb.port);
    const TensorD in = makeInput(lb.session->inputShape(), 4);
    ASSERT_EQ(client.infer(in).status, Status::Ok);
    // The stats counters publish when the batch retires, which can
    // trail the response by a hair; drain() waits for that.
    lb.server.drain();

    const std::string statusz =
        net::httpGet("127.0.0.1", lb.port, "/statusz");
    EXPECT_NE(statusz.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(statusz.find("application/json"), std::string::npos);
    // Build block, config echo, and the per-layer plan table with
    // provenance fields (source is "default" here — no autoSelect).
    EXPECT_NE(statusz.find("\"plan_signature\""), std::string::npos);
    EXPECT_NE(statusz.find("\"MicroServe\""), std::string::npos);
    EXPECT_NE(statusz.find("\"layers\""), std::string::npos);
    EXPECT_NE(statusz.find("\"stem\""), std::string::npos);
    EXPECT_NE(statusz.find("\"plan_source\": \"default\""),
              std::string::npos);
    EXPECT_NE(statusz.find("\"winograd-fp32\""), std::string::npos);
    EXPECT_GE(numberAfter(statusz, "\"completed\": "), 1u);

    const std::string healthz =
        net::httpGet("127.0.0.1", lb.port, "/healthz");
    EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(healthz.find("ok"), std::string::npos);

    // The 404 catalogue advertises the introspection surface.
    const std::string missing =
        net::httpGet("127.0.0.1", lb.port, "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos);
    EXPECT_NE(missing.find("/statusz"), std::string::npos);
}

TEST(NetIntrospect, TracezRecordsRequestTimelines)
{
    RuntimeConfig rcfg;
    rcfg.slowTraceThresholdNs = 0; // record every request
    rcfg.slowTraceSlots = 8;
    Loopback lb(rcfg);
    net::Client client;
    client.connect("127.0.0.1", lb.port);
    const TensorD in = makeInput(lb.session->inputShape(), 5);
    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(client.infer(in).status, Status::Ok);

    const std::string tracez =
        net::httpGet("127.0.0.1", lb.port, "/tracez");
    EXPECT_NE(tracez.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(tracez.find("\"records\""), std::string::npos);
    // Every request crossed the threshold-0 bar; each record carries
    // the same breakdown the wire returns.
    EXPECT_GE(numberAfter(tracez, "\"slots\": "), 8u);
    EXPECT_NE(tracez.find("\"compute_ns\""), std::string::npos);
    EXPECT_GT(numberAfter(tracez, "\"total_ns\": "), 0u);

    // In-process slowRequests() sees the same ring, oldest-first.
    const auto recs = lb.server.slowRequests();
    ASSERT_GE(recs.size(), 3u);
    EXPECT_GT(recs.back().timing.computeNs, 0u);
    EXPECT_EQ(recs.back().totalNs, recs.back().timing.queueNs +
                                       recs.back().timing.batchNs +
                                       recs.back().timing.computeNs);
}

TEST(NetIntrospect, MetricsLabelsAndCompatFlag)
{
    if constexpr (!obs::kEnabled)
        GTEST_SKIP() << "built with TWQ_NO_OBS";

    Loopback lb;
    net::Client client;
    client.connect("127.0.0.1", lb.port);
    const TensorD in = makeInput(lb.session->inputShape(), 6);
    ASSERT_EQ(client.infer(in).status, Status::Ok);

    const std::string metrics =
        net::httpGet("127.0.0.1", lb.port, "/metrics");
    // Proper exposition: HELP/TYPE per family, per-layer histograms
    // folded into ONE labeled family instead of a name per layer.
    EXPECT_NE(metrics.find("# HELP twq_layer_latency_ns"),
              std::string::npos);
    EXPECT_NE(metrics.find("# TYPE twq_layer_latency_ns summary"),
              std::string::npos);
    EXPECT_NE(metrics.find("twq_layer_latency_ns{net=\"MicroServe\","
                           "layer=\"stem\",quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("# TYPE twq_net_requests counter"),
              std::string::npos);
    // Deprecated flat names are gone by default...
    EXPECT_EQ(metrics.find("twq_layer_MicroServe_stem_latency_ns"),
              std::string::npos);
    // ...and come back under the compat query for old dashboards.
    const std::string compat =
        net::httpGet("127.0.0.1", lb.port, "/metrics?compat=1");
    EXPECT_NE(compat.find("twq_layer_latency_ns{net=\"MicroServe\""),
              std::string::npos);
    EXPECT_NE(compat.find("twq_layer_MicroServe_stem_latency_ns"),
              std::string::npos);
}
