/**
 * @file
 * Gradient and behavior tests for the standard layers.
 */

#include <gtest/gtest.h>

#include "gradcheck.hh"
#include "nn/layers.hh"

namespace twq
{
namespace
{

TEST(ReLUTest, ForwardClampsNegatives)
{
    ReLU relu;
    TensorD x({1, 1, 1, 4},
              std::vector<double>{-1.0, 0.0, 2.0, -3.0});
    const TensorD y = relu.forward(x, false);
    EXPECT_DOUBLE_EQ(y[0], 0.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_DOUBLE_EQ(y[2], 2.0);
    EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(ReLUTest, GradCheck)
{
    ReLU relu;
    // Keep values away from the kink for finite differences.
    TensorD x = randomInput({2, 3, 4, 4}, 1);
    for (std::size_t i = 0; i < x.numel(); ++i)
        if (std::abs(x[i]) < 0.05)
            x[i] = 0.1;
    EXPECT_LT(checkInputGrad(relu, x, 2), 1e-6);
}

TEST(BatchNormTest, NormalizesBatch)
{
    BatchNorm2d bn(3);
    const TensorD x = randomInput({4, 3, 5, 5}, 3, 2.5);
    const TensorD y = bn.forward(x, true);
    // Per-channel mean ~0, var ~1.
    for (std::size_t c = 0; c < 3; ++c) {
        double sum = 0.0, sq = 0.0;
        std::size_t cnt = 0;
        for (std::size_t n = 0; n < 4; ++n) {
            for (std::size_t h = 0; h < 5; ++h) {
                for (std::size_t w = 0; w < 5; ++w) {
                    sum += y.at(n, c, h, w);
                    sq += y.at(n, c, h, w) * y.at(n, c, h, w);
                    ++cnt;
                }
            }
        }
        const double mean = sum / cnt;
        EXPECT_NEAR(mean, 0.0, 1e-9);
        EXPECT_NEAR(sq / cnt - mean * mean, 1.0, 1e-3);
    }
}

TEST(BatchNormTest, EvalUsesRunningStats)
{
    BatchNorm2d bn(2);
    const TensorD x = randomInput({8, 2, 4, 4}, 4);
    for (int i = 0; i < 20; ++i)
        bn.forward(x, true);
    const TensorD ytrain = bn.forward(x, true);
    const TensorD yeval = bn.forward(x, false);
    // After converged running stats, train and eval paths agree.
    for (std::size_t i = 0; i < ytrain.numel(); ++i)
        EXPECT_NEAR(ytrain[i], yeval[i], 0.05);
}

TEST(BatchNormTest, InputGradCheck)
{
    BatchNorm2d bn(2);
    const TensorD x = randomInput({3, 2, 3, 3}, 5);
    EXPECT_LT(checkInputGrad(bn, x, 6), 1e-5);
}

TEST(BatchNormTest, ParamGradCheck)
{
    BatchNorm2d bn(2);
    const TensorD x = randomInput({3, 2, 3, 3}, 7);
    auto ps = bn.params();
    ASSERT_EQ(ps.size(), 2u);
    EXPECT_LT(checkParamGrad(bn, *ps[0], x, 8), 1e-5); // gamma
    EXPECT_LT(checkParamGrad(bn, *ps[1], x, 9), 1e-5); // beta
}

TEST(MaxPoolTest, SelectsMaximum)
{
    MaxPool2d pool(2);
    TensorD x({1, 1, 2, 2}, std::vector<double>{1.0, 5.0, 3.0, 2.0});
    const TensorD y = pool.forward(x, false);
    ASSERT_EQ(y.numel(), 1u);
    EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(MaxPoolTest, GradCheck)
{
    MaxPool2d pool(2);
    // Distinct values avoid argmax ties under perturbation.
    TensorD x({1, 2, 4, 4});
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<double>(i) * 0.37;
    EXPECT_LT(checkInputGrad(pool, x, 10), 1e-6);
}

TEST(GlobalAvgPoolTest, Averages)
{
    GlobalAvgPool gap;
    TensorD x({1, 1, 2, 2}, std::vector<double>{1.0, 2.0, 3.0, 6.0});
    const TensorD y = gap.forward(x, false);
    EXPECT_DOUBLE_EQ(y.at(0u, 0u), 3.0);
}

TEST(GlobalAvgPoolTest, GradCheck)
{
    GlobalAvgPool gap;
    const TensorD x = randomInput({2, 3, 4, 4}, 11);
    EXPECT_LT(checkInputGrad(gap, x, 12), 1e-7);
}

TEST(LinearTest, KnownResult)
{
    Rng rng(13);
    Linear lin(2, 1, rng);
    lin.weight().value.at(0u, 0u) = 2.0;
    lin.weight().value.at(0u, 1u) = -1.0;
    TensorD x({1, 2}, std::vector<double>{3.0, 4.0});
    const TensorD y = lin.forward(x, false);
    EXPECT_DOUBLE_EQ(y.at(0u, 0u), 2.0); // 6 - 4 + bias(0)
}

TEST(LinearTest, InputGradCheck)
{
    Rng rng(14);
    Linear lin(5, 3, rng);
    const TensorD x = randomInput({4, 5}, 15);
    EXPECT_LT(checkInputGrad(lin, x, 16), 1e-6);
}

TEST(LinearTest, ParamGradCheck)
{
    Rng rng(17);
    Linear lin(4, 2, rng);
    const TensorD x = randomInput({3, 4}, 18);
    for (Param *p : lin.params())
        EXPECT_LT(checkParamGrad(lin, *p, x, 19), 1e-6) << p->name;
}

} // namespace
} // namespace twq
