#!/bin/sh
# Refresh the committed bench baseline from a local run. Use this
# deliberately, in the same change that legitimately moves the
# numbers, so the regression gate (scripts/check_bench_regression.py)
# keeps meaning something.
#
#   ./scripts/update_bench_baseline.sh [BUILD_DIR]
set -e
build=${1:-build}
repo=$(cd "$(dirname "$0")/.." && pwd)
"$repo/$build/bench_runtime_throughput"
cp "$repo/$build/BENCH_runtime.json" "$repo/bench/baseline_runtime.json"
echo "baseline refreshed: bench/baseline_runtime.json"
