/**
 * @file
 * Unit tests for exact rational arithmetic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rational.hh"

namespace twq
{
namespace
{

TEST(Rational, DefaultIsZero)
{
    Rational r;
    EXPECT_TRUE(r.isZero());
    EXPECT_TRUE(r.isInteger());
    EXPECT_EQ(r.num(), 0);
    EXPECT_EQ(r.den(), 1);
}

TEST(Rational, ReducesOnConstruction)
{
    Rational r(6, 8);
    EXPECT_EQ(r.num(), 3);
    EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSignToNumerator)
{
    Rational r(3, -4);
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 4);
}

TEST(Rational, AddSameDenominator)
{
    EXPECT_EQ(Rational(1, 6) + Rational(1, 6), Rational(1, 3));
}

TEST(Rational, AddDifferentDenominator)
{
    EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
}

TEST(Rational, SubtractToZero)
{
    EXPECT_TRUE((Rational(7, 9) - Rational(7, 9)).isZero());
}

TEST(Rational, MultiplyCrossReduces)
{
    // 2/3 * 3/4 = 1/2 without overflowing intermediates.
    EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
}

TEST(Rational, DivideIsMultiplyByInverse)
{
    EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
}

TEST(Rational, Negation)
{
    EXPECT_EQ(-Rational(1, 24), Rational(-1, 24));
}

TEST(Rational, Ordering)
{
    EXPECT_LT(Rational(1, 3), Rational(1, 2));
    EXPECT_GT(Rational(-1, 4), Rational(-1, 2));
    EXPECT_EQ(Rational(2, 4) <=> Rational(1, 2),
              std::strong_ordering::equal);
}

TEST(Rational, AbsoluteValue)
{
    EXPECT_EQ(Rational(-5, 6).abs(), Rational(5, 6));
    EXPECT_EQ(Rational(5, 6).abs(), Rational(5, 6));
}

TEST(Rational, PowerOfTwoDetection)
{
    EXPECT_TRUE(Rational(1, 2).isPowerOfTwo());
    EXPECT_TRUE(Rational(4).isPowerOfTwo());
    EXPECT_TRUE(Rational(-8).isPowerOfTwo());
    EXPECT_TRUE(Rational(1, 16).isPowerOfTwo());
    EXPECT_FALSE(Rational(1, 3).isPowerOfTwo());
    EXPECT_FALSE(Rational(0).isPowerOfTwo());
    EXPECT_FALSE(Rational(6).isPowerOfTwo());
}

TEST(Rational, ToDoubleExactForDyadic)
{
    EXPECT_DOUBLE_EQ(Rational(1, 4).toDouble(), 0.25);
    EXPECT_DOUBLE_EQ(Rational(-3, 8).toDouble(), -0.375);
}

TEST(Rational, ToIntegerWhenWhole)
{
    EXPECT_EQ(Rational(10, 5).toInteger(), 2);
}

TEST(Rational, StreamAndString)
{
    std::ostringstream oss;
    oss << Rational(-1, 6);
    EXPECT_EQ(oss.str(), "-1/6");
    EXPECT_EQ(Rational(7).toString(), "7");
}

TEST(Rational, WinogradWeightScaleIdentity)
{
    // 24 * (1/24 + 1/12 + 1/6) = 7, the kind of identity the F4
    // weight-transform scaling relies on.
    const Rational sum = Rational(1, 24) + Rational(1, 12) +
                         Rational(1, 6);
    EXPECT_EQ((sum * Rational(24)).toInteger(), 7);
}

} // namespace
} // namespace twq
