/**
 * @file
 * Energy model: event counts (unit-active cycles, per-level memory
 * traffic) times the post-layout per-event costs of Table V.
 */

#ifndef TWQ_SIM_ENERGY_HH
#define TWQ_SIM_ENERGY_HH

#include "sim/operators.hh"

namespace twq
{

/** Energy breakdown of one operator execution (pJ). */
struct EnergyBreakdown
{
    double cube = 0.0;
    double im2colEngine = 0.0;
    double inXform = 0.0;
    double wtXform = 0.0;
    double outXform = 0.0;
    double l0a = 0.0;
    double l0b = 0.0;
    double l0c = 0.0;
    double l1 = 0.0;

    double
    total() const
    {
        return cube + im2colEngine + inXform + wtXform + outXform +
               l0a + l0b + l0c + l1;
    }

    double
    memoryTotal() const
    {
        return l0a + l0b + l0c + l1;
    }
};

/** Compute the energy of one simulated operator execution. */
EnergyBreakdown computeEnergy(const OpPerf &perf,
                              const AcceleratorConfig &cfg);

} // namespace twq

#endif // TWQ_SIM_ENERGY_HH
