/**
 * @file
 * Unit tests for the Matrix type and its linear algebra.
 */

#include <gtest/gtest.h>

#include "common/rational.hh"
#include "tensor/matrix.hh"

namespace twq
{
namespace
{

TEST(Matrix, InitializerList)
{
    MatrixD m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, Transpose)
{
    MatrixD m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const MatrixD t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatmulIdentity)
{
    MatrixD id{{1.0, 0.0}, {0.0, 1.0}};
    MatrixD m{{2.0, 3.0}, {4.0, 5.0}};
    EXPECT_EQ(matmul(id, m), m);
    EXPECT_EQ(matmul(m, id), m);
}

TEST(Matrix, MatmulKnownResult)
{
    MatrixD a{{1.0, 2.0}, {3.0, 4.0}};
    MatrixD b{{5.0, 6.0}, {7.0, 8.0}};
    const MatrixD c = matmul(a, b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulRectangular)
{
    MatrixD a{{1.0, 2.0, 3.0}};          // 1x3
    MatrixD b{{1.0}, {2.0}, {3.0}};      // 3x1
    const MatrixD c = matmul(a, b);      // 1x1
    EXPECT_EQ(c.rows(), 1u);
    EXPECT_EQ(c.cols(), 1u);
    EXPECT_DOUBLE_EQ(c(0, 0), 14.0);
}

TEST(Matrix, Hadamard)
{
    MatrixD a{{1.0, 2.0}, {3.0, 4.0}};
    MatrixD b{{2.0, 2.0}, {2.0, 2.0}};
    const MatrixD c = hadamard(a, b);
    EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 8.0);
}

TEST(Matrix, Add)
{
    MatrixD a{{1.0, 2.0}};
    MatrixD b{{3.0, 4.0}};
    const MatrixD c = add(a, b);
    EXPECT_DOUBLE_EQ(c(0, 0), 4.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 6.0);
}

TEST(Matrix, MapConvertsTypes)
{
    MatrixD a{{1.4, 2.6}};
    const Matrix<int> i = a.map<int>([](double v) {
        return static_cast<int>(v);
    });
    EXPECT_EQ(i(0, 0), 1);
    EXPECT_EQ(i(0, 1), 2);
}

TEST(Matrix, RationalMatmulIsExact)
{
    Matrix<Rational> a{{Rational(1, 3), Rational(1, 6)},
                       {Rational(1, 2), Rational(1, 4)}};
    Matrix<Rational> b{{Rational(6), Rational(0)},
                       {Rational(0), Rational(12)}};
    const auto c = matmul(a, b);
    EXPECT_EQ(c(0, 0), Rational(2));
    EXPECT_EQ(c(0, 1), Rational(2));
    EXPECT_EQ(c(1, 0), Rational(3));
    EXPECT_EQ(c(1, 1), Rational(3));
}

TEST(MatrixDeathTest, MatmulShapeMismatch)
{
    MatrixD a(2, 3), b(2, 3);
    EXPECT_DEATH(matmul(a, b), "matmul shape mismatch");
}

TEST(MatrixDeathTest, RaggedInitializer)
{
    auto make = [] { MatrixD m{{1.0, 2.0}, {3.0}}; (void)m; };
    EXPECT_DEATH(make(), "ragged");
}

} // namespace
} // namespace twq
