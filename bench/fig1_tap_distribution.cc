/**
 * @file
 * Fig. 1 — distribution of log2 |(G f G^T)[y, x]| per tap.
 *
 * The paper plots three selected taps and the combined distribution
 * for ResNet-34 on ImageNet; we train a compact Winograd-F4 network
 * on the synthetic dataset and analyze the first Winograd layer's
 * weights. The headline property — several orders of magnitude of
 * spread between taps — is matrix-induced and reproduces on any
 * trained conv layer.
 */

#include <cmath>
#include <cstdio>

#include "common/stats.hh"
#include "data/synthetic.hh"
#include "models/ablation_net.hh"
#include "nn/trainer.hh"
#include "winograd/transforms.hh"

using namespace twq;

int
main()
{
    std::printf("=== Fig. 1: weight distribution in the Winograd "
                "domain (G f G^T) ===\n\n");

    // Train a small F4 network so the analyzed weights are trained,
    // not random.
    SyntheticConfig dcfg;
    dcfg.classes = 4;
    dcfg.imageSize = 12;
    const DataSplits data = makeSplits(160, 48, 48, dcfg);
    AblationConfig acfg;
    acfg.kind = ConvKind::WinogradF4;
    acfg.channels = 8;
    acfg.classes = 4;
    auto net = makeTinyConvNet(acfg);
    TrainConfig tcfg;
    tcfg.epochs = 3;
    Trainer trainer(*net, tcfg);
    trainer.fit(data.train, data.val);
    std::printf("trained analysis network, val acc %.2f\n\n",
                trainer.evaluate(data.val));

    // First layer of the Sequential is the WinogradConv2d.
    auto &conv = dynamic_cast<WinogradConv2d &>(net->layer(0));
    const TensorD &w = conv.weight().value;
    const std::size_t cout = w.dim(0), cin = w.dim(1);

    // Per-tap log2-magnitude samples.
    const std::size_t t = 6;
    std::vector<std::vector<double>> taps(t * t);
    std::vector<double> combined;
    for (std::size_t oc = 0; oc < cout; ++oc) {
        for (std::size_t ic = 0; ic < cin; ++ic) {
            MatrixD f(3, 3);
            for (std::size_t ky = 0; ky < 3; ++ky)
                for (std::size_t kx = 0; kx < 3; ++kx)
                    f(ky, kx) = w.at(oc, ic, ky, kx);
            const MatrixD wx = weightTransform(f, WinoVariant::F4);
            for (std::size_t i = 0; i < t; ++i) {
                for (std::size_t j = 0; j < t; ++j) {
                    const double m = std::abs(wx(i, j));
                    if (m < 1e-12)
                        continue;
                    taps[i * t + j].push_back(std::log2(m));
                    combined.push_back(std::log2(m));
                }
            }
        }
    }

    std::printf("per-tap log2|GfG^T| mean (the non-uniform dynamic "
                "range of Challenge I):\n      ");
    for (std::size_t j = 0; j < t; ++j)
        std::printf("  col%zu ", j);
    std::printf("\n");
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = 0; i < t; ++i) {
        std::printf("row%zu ", i);
        for (std::size_t j = 0; j < t; ++j) {
            const SampleStats s = computeStats(taps[i * t + j]);
            std::printf("%7.2f", s.mean);
            lo = std::min(lo, s.mean);
            hi = std::max(hi, s.mean);
        }
        std::printf("\n");
    }
    std::printf("\nspread between extreme taps: %.2f bits "
                "(paper Fig. 1 shows a multi-bit spread)\n\n",
                hi - lo);

    // The three selected taps of the figure: a corner tap, an
    // interior tap, and the pass-through tap (5,5).
    for (const auto &[name, idx] :
         std::vector<std::pair<const char *, std::size_t>>{
             {"tap (0,0)", 0}, {"tap (3,3)", 3 * 6 + 3},
             {"tap (5,5)", 35}}) {
        const SampleStats s = computeStats(taps[idx]);
        std::printf("%s: mean %.2f  std %.2f  [%0.2f, %0.2f]\n", name,
                    s.mean, s.stddev, s.min, s.max);
    }

    std::printf("\ncombined distribution of log2|GfG^T| "
                "(cf. Fig. 1):\n");
    Histogram h(-12.0, 6.0, 24);
    h.add(combined);
    std::printf("%s\n", h.render(48).c_str());
    return 0;
}
