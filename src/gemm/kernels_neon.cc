/**
 * @file
 * NEON double-precision micro-kernel for aarch64, where Advanced SIMD
 * is part of the baseline ISA (no special compile flags needed). Same
 * schedule as the AVX2 kernel with the 4 x 8 accumulator tile held in
 * sixteen 2-wide float64x2 registers; the scalar N edge uses std::fma
 * to match vfmaq's fused rounding.
 */

#include "gemm/kernels.hh"

#if defined(__aarch64__)

#include <arm_neon.h>
#include <cmath>

namespace twq
{
namespace gemm
{

namespace
{

void
neonGemmDImpl(const double *a, const double *b, double *c,
              std::size_t m, std::size_t k, std::size_t n,
              std::size_t ldb, std::size_t ldc, bool transA,
              double *pack)
{
    if (k == 0) {
        for (std::size_t i = 0; i < m; ++i)
            std::fill(c + i * ldc, c + i * ldc + n, 0.0);
        return;
    }
    constexpr std::size_t kVecs = kNr / 2; // float64x2 lanes per row
    for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
        const std::size_t kb = std::min(kKc, k - k0);
        const bool first = k0 == 0;
        for (std::size_t i0 = 0; i0 < m; i0 += kMr) {
            const std::size_t mr = std::min(kMr, m - i0);
            packA(a, m, k, transA, i0, mr, k0, kb, pack);

            std::size_t j0 = 0;
            for (; j0 + kNr <= n; j0 += kNr) {
                float64x2_t acc[kMr][kVecs];
                for (std::size_t r = 0; r < kMr; ++r)
                    for (std::size_t v = 0; v < kVecs; ++v)
                        acc[r][v] =
                            (!first && r < mr)
                                ? vld1q_f64(c + (i0 + r) * ldc + j0 +
                                            2 * v)
                                : vdupq_n_f64(0.0);
                for (std::size_t kk = 0; kk < kb; ++kk) {
                    const double *bk = b + (k0 + kk) * ldb + j0;
                    float64x2_t bv[kVecs];
                    for (std::size_t v = 0; v < kVecs; ++v)
                        bv[v] = vld1q_f64(bk + 2 * v);
                    const double *ap = pack + kk * kMr;
                    for (std::size_t r = 0; r < kMr; ++r) {
                        const float64x2_t ar = vdupq_n_f64(ap[r]);
                        for (std::size_t v = 0; v < kVecs; ++v)
                            acc[r][v] =
                                vfmaq_f64(acc[r][v], ar, bv[v]);
                    }
                }
                for (std::size_t r = 0; r < mr; ++r)
                    for (std::size_t v = 0; v < kVecs; ++v)
                        vst1q_f64(c + (i0 + r) * ldc + j0 + 2 * v,
                                  acc[r][v]);
            }
            for (; j0 < n; ++j0) {
                for (std::size_t r = 0; r < mr; ++r) {
                    double s = first ? 0.0 : c[(i0 + r) * ldc + j0];
                    for (std::size_t kk = 0; kk < kb; ++kk)
                        s = std::fma(pack[kk * kMr + r],
                                     b[(k0 + kk) * ldb + j0], s);
                    c[(i0 + r) * ldc + j0] = s;
                }
            }
        }
    }
}

/**
 * int8 -> int32 widening kernel via the smull/sadalp idiom: two B
 * rows zip per column into k-pairs, `vmull_s8` (smull) widens the
 * u8-free signed products to int16 — each fits int16 exactly, |p| <=
 * 2^14 — and `vpadalq_s16` (sadalp) pair-sums adjacent products into
 * the int32 accumulators. Integer sums are order-free, so the result
 * is bit-identical to the generic blocked kernel.
 */
void
neonGemmS8Impl(const std::int8_t *a, const std::int8_t *b,
               std::int32_t *c, std::size_t m, std::size_t k,
               std::size_t n, std::size_t ldb, std::size_t ldc,
               std::int8_t *pack)
{
    if (k == 0) {
        gemmS8ZeroC(c, m, n, ldc);
        return;
    }
    constexpr std::size_t kNc = 16; // int32 columns per vector tile
    for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
        const std::size_t kb = std::min(kKc, k - k0);
        const bool first = k0 == 0;
        for (std::size_t i0 = 0; i0 < m; i0 += kMr) {
            const std::size_t mr = std::min(kMr, m - i0);
            packA(a, m, k, /*transA=*/false, i0, mr, k0, kb, pack);

            std::size_t j0 = 0;
            for (; j0 + kNc <= n; j0 += kNc) {
                int32x4_t acc[kMr][4];
                for (std::size_t r = 0; r < kMr; ++r)
                    for (std::size_t v = 0; v < 4; ++v)
                        acc[r][v] =
                            (!first && r < mr)
                                ? vld1q_s32(c + (i0 + r) * ldc + j0 +
                                            4 * v)
                                : vdupq_n_s32(0);
                std::size_t kk = 0;
                for (; kk + 2 <= kb; kk += 2) {
                    const int8x16_t b0 =
                        vld1q_s8(b + (k0 + kk) * ldb + j0);
                    const int8x16_t b1 =
                        vld1q_s8(b + (k0 + kk + 1) * ldb + j0);
                    // Per-column k-pairs: columns 0-7 and 8-15.
                    const int8x16_t zlo = vzip1q_s8(b0, b1);
                    const int8x16_t zhi = vzip2q_s8(b0, b1);
                    const std::int8_t *ap = pack + kk * kMr;
                    for (std::size_t r = 0; r < kMr; ++r) {
                        const std::uint16_t pair =
                            static_cast<std::uint16_t>(
                                static_cast<std::uint8_t>(ap[r])) |
                            static_cast<std::uint16_t>(
                                static_cast<std::uint16_t>(
                                    static_cast<std::uint8_t>(
                                        ap[kMr + r]))
                                << 8);
                        const int8x16_t av = vreinterpretq_s8_u16(
                            vdupq_n_u16(pair));
                        const int16x8_t p0 = vmull_s8(
                            vget_low_s8(zlo), vget_low_s8(av));
                        const int16x8_t p1 = vmull_s8(
                            vget_high_s8(zlo), vget_high_s8(av));
                        const int16x8_t p2 = vmull_s8(
                            vget_low_s8(zhi), vget_low_s8(av));
                        const int16x8_t p3 = vmull_s8(
                            vget_high_s8(zhi), vget_high_s8(av));
                        acc[r][0] = vpadalq_s16(acc[r][0], p0);
                        acc[r][1] = vpadalq_s16(acc[r][1], p1);
                        acc[r][2] = vpadalq_s16(acc[r][2], p2);
                        acc[r][3] = vpadalq_s16(acc[r][3], p3);
                    }
                }
                if (kk < kb) { // odd K tail: pair with a zero row
                    const int8x16_t b0 =
                        vld1q_s8(b + (k0 + kk) * ldb + j0);
                    const int8x16_t zero = vdupq_n_s8(0);
                    const int8x16_t zlo = vzip1q_s8(b0, zero);
                    const int8x16_t zhi = vzip2q_s8(b0, zero);
                    const std::int8_t *ap = pack + kk * kMr;
                    for (std::size_t r = 0; r < kMr; ++r) {
                        const std::uint16_t pair =
                            static_cast<std::uint16_t>(
                                static_cast<std::uint8_t>(ap[r]));
                        const int8x16_t av = vreinterpretq_s8_u16(
                            vdupq_n_u16(pair));
                        const int16x8_t p0 = vmull_s8(
                            vget_low_s8(zlo), vget_low_s8(av));
                        const int16x8_t p1 = vmull_s8(
                            vget_high_s8(zlo), vget_high_s8(av));
                        const int16x8_t p2 = vmull_s8(
                            vget_low_s8(zhi), vget_low_s8(av));
                        const int16x8_t p3 = vmull_s8(
                            vget_high_s8(zhi), vget_high_s8(av));
                        acc[r][0] = vpadalq_s16(acc[r][0], p0);
                        acc[r][1] = vpadalq_s16(acc[r][1], p1);
                        acc[r][2] = vpadalq_s16(acc[r][2], p2);
                        acc[r][3] = vpadalq_s16(acc[r][3], p3);
                    }
                }
                for (std::size_t r = 0; r < mr; ++r)
                    for (std::size_t v = 0; v < 4; ++v)
                        vst1q_s32(c + (i0 + r) * ldc + j0 + 4 * v,
                                  acc[r][v]);
            }
            gemmS8EdgeCols(pack, b, c, i0, mr, j0, n, k0, kb, ldb,
                           ldc, first);
        }
    }
}

} // namespace

GemmDFn
neonGemmD()
{
    return &neonGemmDImpl;
}

GemmS8Fn
neonGemmS8()
{
    return &neonGemmS8Impl;
}

} // namespace gemm
} // namespace twq

#else // !__aarch64__

namespace twq
{
namespace gemm
{

GemmDFn
neonGemmD()
{
    return nullptr;
}

GemmS8Fn
neonGemmS8()
{
    return nullptr;
}

} // namespace gemm
} // namespace twq

#endif
