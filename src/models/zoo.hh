/**
 * @file
 * Layer-shape descriptions of the paper's benchmark networks
 * (Section V-B1): ResNet-34/50, VGG-nagadomi, ResNet-20,
 * SSD-VGG-16, YOLOv3, UNet, and RetinaNet-ResNet50-FPN.
 *
 * These are pure shape inventories (no weights) consumed by the
 * accelerator performance model: per layer kernel/stride/channels and
 * the input resolution at that layer. The inventories follow the
 * Torchvision implementations the paper uses; minor head/auxiliary
 * layers that contribute negligible compute are omitted.
 */

#ifndef TWQ_MODELS_ZOO_HH
#define TWQ_MODELS_ZOO_HH

#include <string>
#include <vector>

namespace twq
{

/**
 * What a network node computes. Historically every node was a
 * convolution; Bias and Relu nodes describe the element-wise
 * post-operations that follow a conv in real networks. The session's
 * fusion planner (xform/fuse.hh) collapses conv→bias→relu runs into
 * one fused layer; unfused they execute as separate element-wise
 * passes.
 */
enum class LayerOp
{
    Conv, ///< convolution (all geometry fields meaningful)
    Bias, ///< per-channel bias add (cin == cout, geometry pass-through)
    Relu, ///< element-wise max(x, 0) (cin == cout, pass-through)
};

/** Shape of one network layer instance (conv or post-op node). */
struct ConvLayerDesc
{
    std::string name;
    LayerOp op = LayerOp::Conv;
    std::size_t cin = 0;
    std::size_t cout = 0;
    std::size_t kernel = 3;
    std::size_t stride = 1;
    std::size_t height = 0;  ///< input height at this layer
    std::size_t width = 0;   ///< input width at this layer
    std::size_t repeat = 1;  ///< number of identical instances

    /** Output spatial size ("same" padding semantics; post-op nodes
     * pass geometry through unchanged). */
    std::size_t
    outHeight() const
    {
        return op == LayerOp::Conv ? (height + stride - 1) / stride
                                   : height;
    }
    std::size_t
    outWidth() const
    {
        return op == LayerOp::Conv ? (width + stride - 1) / stride
                                   : width;
    }

    /** MACs of one instance for one image (0 for post-op nodes). */
    double macs() const;

    /** Eligible for the Winograd path (3x3, stride 1 conv)? */
    bool
    winogradEligible() const
    {
        return op == LayerOp::Conv && kernel == 3 && stride == 1;
    }
};

/** A network as a list of conv layers. */
struct NetworkDesc
{
    std::string name;
    std::size_t inputRes = 224;
    std::vector<ConvLayerDesc> layers;

    double totalMacs() const;
    double winogradMacs() const;

    /**
     * Layers with `repeat` expanded into individual instances (each
     * with repeat == 1), the form the serving runtime executes.
     */
    std::vector<ConvLayerDesc> expandedLayers() const;
};

/** ImageNet classification backbones. */
NetworkDesc resnet34(std::size_t res = 224);
NetworkDesc resnet50(std::size_t res = 224);

/** CIFAR-10 networks used in Table III. */
NetworkDesc resnet20();
NetworkDesc vggNagadomi();

/** Detection / segmentation networks. */
NetworkDesc ssdVgg16(std::size_t res = 300);
NetworkDesc yolov3(std::size_t res = 416);
NetworkDesc unet(std::size_t res = 572);
NetworkDesc retinanetR50(std::size_t res = 800);

/** The seven networks of the Table VII evaluation. */
std::vector<NetworkDesc> tableSevenNetworks();

/**
 * Tiny sequentially-chainable network for the serving runtime's tests
 * and benchmarks: a winograd-eligible stem and body, a strided layer
 * and a pointwise head that exercise the im2col fallback. Unlike the
 * paper's inventories above (which are per-layer shape lists with
 * residual topology elided), consecutive layers here really chain:
 * cout and output resolution of layer i match cin and input
 * resolution of layer i+1.
 */
NetworkDesc microServeNet(std::size_t res = 16, std::size_t width = 8);

/**
 * microServeNet with explicit Bias and Relu nodes after every conv —
 * the dataflow shape real networks present to the session's epilogue
 * fusion planner (xform/fuse.hh). With fusion on, the chain collapses
 * back to microServeNet's conv count; with fusion off, the post-ops
 * run as separate element-wise passes (the bit-identity baseline).
 */
NetworkDesc microServeNetFused(std::size_t res = 16,
                               std::size_t width = 8);

} // namespace twq

#endif // TWQ_MODELS_ZOO_HH
