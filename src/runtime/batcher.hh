/**
 * @file
 * Request coalescing for the serving runtime.
 *
 * Independent single-image requests are concatenated along the batch
 * dimension before execution. A batch is cut as soon as `maxBatch`
 * requests are pending, or when the oldest pending request has waited
 * `maxWait` — the classic size-or-deadline policy of serving systems.
 */

#ifndef TWQ_RUNTIME_BATCHER_HH
#define TWQ_RUNTIME_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "tensor/tensor.hh"

namespace twq
{

/**
 * Server-side wall-time breakdown of one request, in nanoseconds.
 * The three phases partition the enqueue-to-respond interval exactly:
 * queueNs + batchNs + computeNs == time from Batcher::add to the
 * moment the completion callback runs, so a client can subtract the
 * total from its measured RTT to get pure network + encode time.
 */
struct RequestTiming
{
    std::uint64_t queueNs = 0;   ///< waiting in the batcher queue
    std::uint64_t batchNs = 0;   ///< batch overhead (stack/respond/peers)
    std::uint64_t computeNs = 0; ///< the batched forward pass itself
};

/** One in-flight inference request. */
struct InferRequest
{
    /**
     * Completion callback: invoked exactly once on the executing
     * worker with the response tensor (and a null error), or with an
     * empty tensor and the captured exception. When set, the promise
     * is not used — this is the zero-future path the network front
     * door rides so a response can be re-encoded onto the socket
     * without a blocked waiter thread per request.
     */
    using Respond = std::function<void(TensorD &&, std::exception_ptr)>;

    /** Callback variant that also receives the timing breakdown. */
    using RespondTimed = std::function<void(
        TensorD &&, std::exception_ptr, const RequestTiming &)>;

    std::uint64_t id = 0;
    /** Request trace id minted at ingress; 0 when tracing is off. */
    std::uint64_t traceId = 0;
    TensorD input; ///< [1, C, H, W]
    std::promise<TensorD> promise;
    RespondTimed respond; ///< callback path; promise path when empty
    std::chrono::steady_clock::time_point enqueued;
};

/** A group of requests executed as one batched forward pass. */
struct Batch
{
    std::vector<InferRequest> requests;

    std::size_t size() const { return requests.size(); }
};

/** Size-or-deadline batching policy. */
struct BatchPolicy
{
    std::size_t maxBatch = 8;
    std::chrono::microseconds maxWait{2000};
};

/**
 * Thread-safe request accumulator. Producers call add(); one or more
 * dispatchers block in next() until a batch is ready.
 */
class Batcher
{
  public:
    explicit Batcher(BatchPolicy policy);

    /** Enqueue a request. Panics if the batcher is closed. */
    void add(InferRequest req);

    /**
     * Block until a batch is ready under the policy and return it;
     * nullopt once the batcher is closed and drained.
     *
     * `flushHint` (optional) is polled while a partial batch waits
     * for its deadline: when it returns true — e.g. the server
     * reports an idle worker — the partial batch is cut immediately
     * instead of stalling out maxWait. maxWait then only bounds the
     * wait while all workers are busy, which is exactly when waiting
     * buys larger batches.
     */
    std::optional<Batch> next(const std::function<bool()> &flushHint = {});

    /** Re-evaluate flushHint in a blocked next() (e.g. worker freed). */
    void kick();

    /** Stop accepting requests; pending ones still drain via next(). */
    void close();

    const BatchPolicy &policy() const { return policy_; }

    std::size_t
    pendingCount() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return pending_.size();
    }

  private:
    /** Cut up to maxBatch requests off the front; caller holds mu_. */
    Batch cutLocked();

    BatchPolicy policy_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<InferRequest> pending_;
    bool closed_ = false;
};

} // namespace twq

#endif // TWQ_RUNTIME_BATCHER_HH
