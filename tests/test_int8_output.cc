/**
 * @file
 * Tests for the fully integer inference path (forwardInt8): the
 * FixPipe-style shift requantization and the fused ReLU.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "quant/int_winograd.hh"
#include "tensor/im2col.hh"

namespace twq
{
namespace
{

struct Fixture
{
    TensorD weights;
    TensorD input;
    std::vector<TensorD> calib;

    explicit Fixture(std::uint64_t seed)
    {
        Rng rng(seed);
        weights = TensorD({6, 4, 3, 3});
        for (std::size_t i = 0; i < weights.numel(); ++i)
            weights[i] = rng.normal(0.0, 0.15);
        input = TensorD({1, 4, 12, 12});
        for (std::size_t i = 0; i < input.numel(); ++i)
            input[i] = rng.normal();
        TensorD c({1, 4, 12, 12});
        for (std::size_t i = 0; i < c.numel(); ++i)
            c[i] = rng.normal();
        calib.push_back(std::move(c));
    }
};

TEST(ForwardInt8, MatchesFpPathWithinOutputStep)
{
    Fixture fx(1);
    IntWinogradConfig cfg;
    cfg.pow2Scales = true;
    IntWinogradConv conv(fx.weights, fx.calib, cfg);
    const TensorD fp = conv.forward(fx.input);
    double sy = 0.0;
    const TensorI8 q = conv.forwardInt8(fx.input, &sy);
    ASSERT_GT(sy, 0.0);
    // Dequantized int8 output tracks the (already quantized) FP
    // pipeline within about one output quantization step.
    double worst = 0.0;
    for (std::size_t i = 0; i < fp.numel(); ++i) {
        const double deq = static_cast<double>(q[i]) * sy;
        worst = std::max(worst, std::abs(deq - fp[i]));
    }
    EXPECT_LT(worst, 1.5 * sy);
}

TEST(ForwardInt8, OutputScaleIsPowerOfTwo)
{
    Fixture fx(2);
    IntWinogradConfig cfg;
    IntWinogradConv conv(fx.weights, fx.calib, cfg);
    double sy = 0.0;
    conv.forwardInt8(fx.input, &sy);
    const double l = std::log2(sy);
    EXPECT_NEAR(l, std::nearbyint(l), 1e-12);
}

TEST(ForwardInt8, CoversTheInt8Range)
{
    Fixture fx(3);
    IntWinogradConfig cfg;
    IntWinogradConv conv(fx.weights, fx.calib, cfg);
    double sy = 0.0;
    const TensorI8 q = conv.forwardInt8(fx.input, &sy);
    int lo = 127, hi = -128;
    for (std::size_t i = 0; i < q.numel(); ++i) {
        lo = std::min<int>(lo, q[i]);
        hi = std::max<int>(hi, q[i]);
    }
    // A pow2-ceil scale guarantees at least half range utilization.
    EXPECT_LT(lo, -30);
    EXPECT_GT(hi, 30);
}

TEST(ForwardInt8, FusedReluClampsNegatives)
{
    Fixture fx(4);
    IntWinogradConfig cfg;
    IntWinogradConv conv(fx.weights, fx.calib, cfg);
    double sy = 0.0;
    const TensorI8 q = conv.forwardInt8(fx.input, &sy, true);
    for (std::size_t i = 0; i < q.numel(); ++i)
        EXPECT_GE(q[i], 0);
}

TEST(ForwardInt8, ReluMatchesPostHocRelu)
{
    Fixture fx(5);
    IntWinogradConfig cfg;
    IntWinogradConv conv(fx.weights, fx.calib, cfg);
    double sy1 = 0.0, sy2 = 0.0;
    const TensorI8 plain = conv.forwardInt8(fx.input, &sy1, false);
    const TensorI8 fused = conv.forwardInt8(fx.input, &sy2, true);
    ASSERT_DOUBLE_EQ(sy1, sy2);
    for (std::size_t i = 0; i < plain.numel(); ++i) {
        const int expect = std::max<int>(0, plain[i]);
        // Rounding of slightly negative pre-activations can differ
        // by one step around zero.
        EXPECT_NEAR(fused[i], expect, 1.0);
    }
}

TEST(ForwardInt8, WorksForF2)
{
    Fixture fx(6);
    IntWinogradConfig cfg;
    cfg.variant = WinoVariant::F2;
    IntWinogradConv conv(fx.weights, fx.calib, cfg);
    const TensorD fp = conv.forward(fx.input);
    double sy = 0.0;
    const TensorI8 q = conv.forwardInt8(fx.input, &sy);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < fp.numel(); ++i) {
        const double deq = static_cast<double>(q[i]) * sy;
        num += (deq - fp[i]) * (deq - fp[i]);
        den += fp[i] * fp[i];
    }
    EXPECT_LT(std::sqrt(num / std::max(den, 1e-30)), 0.1);
}

TEST(ForwardInt8, DeterministicAcrossCalls)
{
    Fixture fx(7);
    IntWinogradConfig cfg;
    IntWinogradConv conv(fx.weights, fx.calib, cfg);
    double s1 = 0.0, s2 = 0.0;
    const TensorI8 a = conv.forwardInt8(fx.input, &s1);
    const TensorI8 b = conv.forwardInt8(fx.input, &s2);
    EXPECT_EQ(a, b);
    EXPECT_DOUBLE_EQ(s1, s2);
}

TEST(ForwardInt8DeathTest, RequiresPow2Scales)
{
    Fixture fx(8);
    IntWinogradConfig cfg;
    cfg.pow2Scales = false;
    IntWinogradConv conv(fx.weights, fx.calib, cfg);
    double sy = 0.0;
    EXPECT_DEATH(conv.forwardInt8(fx.input, &sy),
                 "power-of-two");
}

} // namespace
} // namespace twq
