/**
 * @file
 * Winograd tile transforms: B^T x B, G f G^T, A^T Y A.
 *
 * Three precision regimes are provided:
 *  - double: the FP32-style reference used for accuracy studies,
 *  - exact Rational: used to prove algorithm equivalence,
 *  - scaled int64: bit-true integer transforms where fractional
 *    matrices (G) are pre-scaled by the LCM of their denominators,
 *    mirroring what fixed-point hardware does.
 */

#ifndef TWQ_WINOGRAD_TRANSFORMS_HH
#define TWQ_WINOGRAD_TRANSFORMS_HH

#include "common/rational.hh"
#include "tensor/matrix.hh"
#include "winograd/matrices.hh"

namespace twq
{

/** Convert a rational matrix to double precision. */
MatrixD ratToDouble(const Matrix<Rational> &m);

/** B^T x B for a [t, t] input tile. */
MatrixD inputTransform(const MatrixD &tile, WinoVariant v);

/** G f G^T for a [3, 3] kernel. */
MatrixD weightTransform(const MatrixD &kernel, WinoVariant v);

/** A^T Y A for a [t, t] Winograd-domain tile, yielding [m, m]. */
MatrixD outputTransform(const MatrixD &wtile, WinoVariant v);

/** Exact-rational variants of the above. */
Matrix<Rational> inputTransformExact(const Matrix<Rational> &tile,
                                     WinoVariant v);
Matrix<Rational> weightTransformExact(const Matrix<Rational> &kernel,
                                      WinoVariant v);
Matrix<Rational> outputTransformExact(const Matrix<Rational> &wtile,
                                      WinoVariant v);

/**
 * Bit-true integer input transform; B^T is integer for F2/F4 so no
 * scale factor is involved.
 */
MatrixI64 inputTransformInt(const MatrixI64 &tile, WinoVariant v);

/**
 * Bit-true integer weight transform, computed as
 * (c G) f (c G)^T = c^2 (G f G^T) with c = lcm of G's denominators.
 *
 * @param kernel integer [3, 3] kernel.
 * @param v      Winograd variant.
 * @param scale  output: the applied scale c^2 (4 for F2, 576 for F4).
 */
MatrixI64 weightTransformInt(const MatrixI64 &kernel, WinoVariant v,
                             std::int64_t *scale);

/** Bit-true integer output transform; A^T is integer for F2/F4. */
MatrixI64 outputTransformInt(const MatrixI64 &wtile, WinoVariant v);

} // namespace twq

#endif // TWQ_WINOGRAD_TRANSFORMS_HH
