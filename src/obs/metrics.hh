/**
 * @file
 * Lock-free runtime metrics: counters, gauges and mergeable
 * log2-bucket latency histograms behind a name-keyed registry.
 *
 * The hot path is wait-free: every metric is a cache-line-padded
 * atomic (or a fixed array of atomics for histogram bins) that
 * callers resolve ONCE — at prepare/construction time, through the
 * mutex-protected Registry lookup — and then update with relaxed
 * atomic ops. Snapshots read the same atomics, so a reader never
 * blocks a writer; a snapshot taken during concurrent recording is a
 * valid (if slightly torn across metrics) point-in-time view, and
 * histogram snapshots from different threads or processes merge by
 * bin-wise addition, which is associative and order-independent.
 *
 * Histograms use fixed log2-scale buckets over uint64 values
 * (nanoseconds for latencies, plain counts for sizes): bucket 0 holds
 * [0, 2), bucket b >= 1 holds [2^b, 2^(b+1)). Quantiles interpolate
 * linearly within the resolved bucket, so a reported p50/p99/p99.9 is
 * always within one bucket width (a factor of 2) of the exact
 * sorted-sample value — tests/test_obs.cc holds that bound against an
 * exact oracle.
 *
 * `TWQ_NO_OBS` compiles the whole subsystem down to no-op stubs with
 * the same API, so instrumented call sites need no #ifdefs.
 */

#ifndef TWQ_OBS_METRICS_HH
#define TWQ_OBS_METRICS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#ifndef TWQ_NO_OBS
#include <atomic>
#include <bit>
#include <deque>
#include <mutex>
#endif

namespace twq::obs
{

/** Compile-time flag: false when built with -DTWQ_NO_OBS. */
#ifndef TWQ_NO_OBS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/** Number of log2 buckets; covers the full uint64 range. */
inline constexpr std::size_t kHistBins = 64;

/**
 * An immutable copy of a histogram's bins. Mergeable: bin-wise
 * addition, so per-thread or per-server histograms combine into
 * fleet-level distributions without ordering constraints.
 */
struct HistogramSnapshot
{
    std::array<std::uint64_t, kHistBins> bins{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0; ///< sum of recorded values (ns for latencies)

    /** Bucket of a value: 0 for [0,2), b for [2^b, 2^(b+1)). */
    static std::size_t binIndex(std::uint64_t v);

    /** Inclusive lower edge of a bucket. */
    static std::uint64_t binLower(std::size_t b);

    /** Exclusive upper edge of a bucket (saturates for the last). */
    static std::uint64_t binUpper(std::size_t b);

    /** Bin-wise accumulate `o` into this snapshot. */
    void merge(const HistogramSnapshot &o);

    /**
     * Nearest-rank quantile (q in [0, 1]), linearly interpolated
     * within the resolved bucket — the same rank convention as
     * twq::percentile, so the two agree to within one bucket width.
     */
    double quantile(double q) const;

    double mean() const;

    /** Latency helpers: recorded values are nanoseconds. */
    double quantileMs(double q) const { return quantile(q) * 1e-6; }
    double p50Ms() const { return quantileMs(0.50); }
    double p99Ms() const { return quantileMs(0.99); }
    double p999Ms() const { return quantileMs(0.999); }
};

/** Point-in-time copy of a registry's metrics. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Accumulate another snapshot (counters add, gauges overwrite). */
    void merge(const MetricsSnapshot &o);

    /**
     * Prometheus text exposition (format 0.0.4): every family gets
     * `# HELP` and `# TYPE` lines, counters and gauges render as
     * `twq_<name> <value>` with sanitized names ('.', '-', and ':'
     * become '_'), histograms as summaries with quantile/sum/count
     * series. Per-layer latency histograms named
     * `layer.<net>.<layer>.latency_ns` are converted to the single
     * labelled family `twq_layer_latency_ns{net="...",layer="..."}`
     * so one dashboard query covers every network; pass
     * `includeCompat = true` to also emit the old flattened names for
     * those series (deprecated, kept for one release).
     */
    std::string prometheusText(bool includeCompat = false) const;
};

#ifndef TWQ_NO_OBS

/** Monotonic counter; inc() is a relaxed fetch_add. */
class alignas(64) Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-write-wins signed gauge. */
class alignas(64) Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed log2-bucket histogram with atomic bins. record() is two
 * relaxed fetch_adds plus a bit scan — safe and wait-free from any
 * number of threads; concurrent recording is exactly additive, so a
 * multi-threaded fill produces the same bins as a sequential one.
 */
class Histogram
{
  public:
    void
    record(std::uint64_t v)
    {
        bins_[HistogramSnapshot::binIndex(v)].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    /** Record a duration in seconds as integer nanoseconds. */
    void
    recordSec(double sec)
    {
        record(sec <= 0.0 ? 0
                          : static_cast<std::uint64_t>(sec * 1e9));
    }

    HistogramSnapshot snapshot() const;
    void reset();

  private:
    std::atomic<std::uint64_t> bins_[kHistBins] = {};
    alignas(64) std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * Name-keyed metric registry. Lookup registers on first use and
 * returns a reference that stays valid for the registry's lifetime
 * (metrics live in deques) — resolve once, update lock-free forever.
 * Registry::global() serves process-wide metrics (plan cache,
 * calibration, pool utilization); an InferenceServer owns a private
 * instance so concurrent servers do not mix request histograms.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    static Registry &global();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    MetricsSnapshot snapshot() const;

    /** Zero every registered metric (testing/bench isolation). */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, Counter *, std::less<>> counterIdx_;
    std::map<std::string, Gauge *, std::less<>> gaugeIdx_;
    std::map<std::string, Histogram *, std::less<>> histIdx_;
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> hists_;
};

#else // TWQ_NO_OBS ------------------------------------------ stubs

class Counter
{
  public:
    void inc(std::uint64_t = 1) {}
    std::uint64_t value() const { return 0; }
    void reset() {}
};

class Gauge
{
  public:
    void set(std::int64_t) {}
    void add(std::int64_t) {}
    std::int64_t value() const { return 0; }
    void reset() {}
};

class Histogram
{
  public:
    void record(std::uint64_t) {}
    void recordSec(double) {}
    HistogramSnapshot snapshot() const { return {}; }
    void reset() {}
};

class Registry
{
  public:
    Registry() = default;

    static Registry &
    global()
    {
        static Registry r;
        return r;
    }

    Counter &
    counter(std::string_view)
    {
        static Counter c;
        return c;
    }

    Gauge &
    gauge(std::string_view)
    {
        static Gauge g;
        return g;
    }

    Histogram &
    histogram(std::string_view)
    {
        static Histogram h;
        return h;
    }

    MetricsSnapshot snapshot() const { return {}; }
    void reset() {}
};

#endif // TWQ_NO_OBS

} // namespace twq::obs

#endif // TWQ_OBS_METRICS_HH
