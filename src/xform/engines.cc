#include "xform/engines.hh"

#include "common/logging.hh"
#include "winograd/matrices.hh"

namespace twq
{

const char *
engineKindName(EngineKind k)
{
    switch (k) {
      case EngineKind::RowByRowSlow:
        return "row-by-row (slow)";
      case EngineKind::RowByRowFast:
        return "row-by-row (fast)";
      case EngineKind::TapByTap:
        return "tap-by-tap";
    }
    return "?";
}

const char *
convEngineName(ConvEngine e)
{
    switch (e) {
      case ConvEngine::Im2col:
        return "im2col";
      case ConvEngine::WinogradFp32:
        return "winograd-fp32";
      case ConvEngine::WinogradInt8:
        return "winograd-int8";
      case ConvEngine::Im2colInt8:
        return "im2col-int8";
      case ConvEngine::WinogradBlocked:
        return "winograd-blocked";
      case ConvEngine::WinogradBlockedInt8:
        return "winograd-blocked-int8";
      case ConvEngine::WinogradBlockedF16:
        return "winograd-blocked-f16";
    }
    return "?";
}

bool
convEngineFromName(const std::string &name, ConvEngine *out)
{
    for (ConvEngine e : kAllConvEngines) {
        if (name == convEngineName(e)) {
            *out = e;
            return true;
        }
    }
    return false;
}

std::size_t
tapByTapOps(const Matrix<Rational> &t)
{
    const TransformDfg d = buildTransformDfg(t);
    // Each adder-op is one cycle on the single shift+add+accumulate
    // PE; CSE (hash-consing) already removed recomputation.
    return d.dfg.numAdders();
}

std::size_t
rowPeAdders(const Matrix<Rational> &t)
{
    // One row of s times T: a 1D shift-add network with CSE.
    const std::int64_t scale = denominatorLcm(t);
    const MatrixI64 ti = scaledInteger(t, scale);
    Dfg dfg;
    for (std::size_t j = 0; j < t.cols(); ++j) {
        int acc = Dfg::kZero;
        for (std::size_t v = 0; v < t.rows(); ++v) {
            if (ti(v, j) == 0)
                continue;
            acc = dfg.add(acc, dfg.mulConst(dfg.input(0, v), ti(v, j)));
        }
        (void)acc;
    }
    return dfg.numAdders();
}

EnginePerf
evaluateEngine(const Matrix<Rational> &t, const EngineConfig &cfg)
{
    const std::size_t ht = t.rows();
    const std::size_t wt = t.cols();
    EnginePerf p;
    p.parallelXforms = cfg.pc * cfg.ps;

    const TransformDfg full = buildTransformDfg(t);
    p.dfgDepth = 0;
    for (int root : full.outputs)
        p.dfgDepth = std::max(p.dfgDepth, full.dfg.depth(root));

    switch (cfg.kind) {
      case EngineKind::RowByRowSlow:
        // One pass per row of s (hT cycles) plus one per column of
        // the intermediate (wT cycles), reusing the same PE.
        p.cyclesPerXform = static_cast<double>(ht + wt);
        p.addersPerPe = rowPeAdders(t);
        p.shiftersPerPe = 0; // fixed shifts folded into wiring
        // Reads one row (hT elements) per cycle per transform.
        p.rdBytesPerCycle = static_cast<double>(
            cfg.pc * cfg.ps * ht * cfg.inBytes);
        p.wrBytesPerCycle = static_cast<double>(
            cfg.pc * cfg.ps * ht * cfg.outBytes);
        break;
      case EngineKind::RowByRowFast:
        // Second pass computed by wT x wT output-stationary lanes.
        p.cyclesPerXform = static_cast<double>(ht);
        p.addersPerPe = rowPeAdders(t) + wt * wt;
        p.shiftersPerPe = wt * wt; // per-lane configurable shift
        p.rdBytesPerCycle = static_cast<double>(
            cfg.pc * cfg.ps * ht * cfg.inBytes);
        p.wrBytesPerCycle = static_cast<double>(
            cfg.pc * cfg.ps * ht * cfg.outBytes);
        break;
      case EngineKind::TapByTap: {
        // Fully time-unrolled: ops/Pt cycles per transform ("T
        // dependent" in Table I); worst case would be hT*hT per tap.
        const std::size_t ops = tapByTapOps(t);
        twq_assert(cfg.pt >= 1, "Pt must be at least 1");
        p.cyclesPerXform =
            static_cast<double>((ops + cfg.pt - 1) / cfg.pt);
        p.parallelXforms = cfg.pc * cfg.ps;
        p.addersPerPe = cfg.pt; // one adder/accumulator per tap lane
        p.shiftersPerPe = cfg.pt; // configurable shifter per lane
        // One element read per cycle, shared across the Pt tap
        // lanes; writes split into sub-writes (Table I): Pc*Ps each.
        p.rdBytesPerCycle =
            static_cast<double>(cfg.pc * cfg.ps * cfg.inBytes);
        p.wrBytesPerCycle =
            static_cast<double>(cfg.pc * cfg.ps * cfg.outBytes);
        break;
      }
    }
    return p;
}

} // namespace twq
