#include "winograd/tiled.hh"

#include <algorithm>
#include <type_traits>

#include "common/logging.hh"
#include "obs/perf.hh"
#include "obs/trace.hh"

namespace twq
{

namespace
{

/// Largest transformed tile across variants (F6: t = 8).
constexpr std::size_t kMaxT = 8;

template <typename T>
std::vector<T>
ratToFlat(const Matrix<Rational> &m)
{
    std::vector<T> out(m.rows() * m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            out[r * m.cols() + c] =
                static_cast<T>(m(r, c).toDouble());
    return out;
}

} // namespace

WinoDims
winoDims(const Shape &input, WinoVariant v, std::size_t pad)
{
    twq_assert(input.size() == 4, "winoDims expects an NCHW shape");
    const WinoSpec spec = winoSpec(v);
    const ConvParams p{3, 1, pad};
    WinoDims d;
    d.t = spec.t;
    d.m = spec.m;
    d.n = input[0];
    d.cin = input[1];
    d.ho = p.outSize(input[2]);
    d.wo = p.outSize(input[3]);
    d.tilesY = (d.ho + spec.m - 1) / spec.m;
    d.tilesX = (d.wo + spec.m - 1) / spec.m;
    d.tiles = d.n * d.tilesY * d.tilesX;
    return d;
}

template <typename T>
WinogradTapWeights<T>
winogradPrepareTapWeights(const Tensor<T> &weights, WinoVariant v)
{
    twq_assert(weights.rank() == 4, "expected OIKK weights");
    twq_assert(weights.dim(2) == 3 && weights.dim(3) == 3,
               "Winograd path supports 3x3 kernels only");
    const WinoSpec spec = winoSpec(v);
    const std::size_t t = spec.t;
    const std::size_t cout = weights.dim(0);
    const std::size_t cin = weights.dim(1);
    const std::vector<T> g = ratToFlat<T>(winoG(v));

    WinogradTapWeights<T> out;
    out.variant = v;
    out.cout = cout;
    out.cin = cin;
    out.taps.resize(t * t * cout * cin);
    T f[9];
    T tmp[kMaxT * 3];
    T wx[kMaxT * kMaxT];
    for (std::size_t oc = 0; oc < cout; ++oc) {
        for (std::size_t ic = 0; ic < cin; ++ic) {
            for (std::size_t ky = 0; ky < 3; ++ky)
                for (std::size_t kx = 0; kx < 3; ++kx)
                    f[ky * 3 + kx] = weights.at(oc, ic, ky, kx);
            // wx = G f G^T with G of shape [t, 3].
            gemm::referenceGemm(g.data(), f, tmp, t, 3, 3);
            for (std::size_t i = 0; i < t; ++i) {
                for (std::size_t j = 0; j < t; ++j) {
                    T s{};
                    for (std::size_t k = 0; k < 3; ++k)
                        s += tmp[i * 3 + k] * g[j * 3 + k];
                    wx[i * t + j] = s;
                }
            }
            for (std::size_t k = 0; k < t * t; ++k)
                out.at(k, oc, ic) = wx[k];
        }
    }
    return out;
}

template <typename T>
WinogradTapWeights<T>
tapMajorWeights(const WinogradWeights<T> &w)
{
    const WinoSpec spec = winoSpec(w.variant);
    const std::size_t t = spec.t;
    WinogradTapWeights<T> out;
    out.variant = w.variant;
    out.cout = w.cout;
    out.cin = w.cin;
    out.taps.resize(t * t * w.cout * w.cin);
    for (std::size_t oc = 0; oc < w.cout; ++oc)
        for (std::size_t ic = 0; ic < w.cin; ++ic) {
            const Matrix<T> &tile = w.tile(oc, ic);
            for (std::size_t i = 0; i < t; ++i)
                for (std::size_t j = 0; j < t; ++j)
                    out.at(i * t + j, oc, ic) = tile(i, j);
        }
    return out;
}

template <typename T>
WinoKronPlan<T>
makeKronPlan(const Matrix<Rational> &l)
{
    const std::size_t rows = l.rows();
    const std::size_t cols = l.cols();
    WinoKronPlan<T> plan;
    plan.rowsOut = rows * rows;
    plan.rowsIn = cols * cols;
    plan.rowStart.reserve(plan.rowsOut + 1);
    plan.rowStart.push_back(0);
    for (std::size_t i1 = 0; i1 < rows; ++i1) {
        for (std::size_t i2 = 0; i2 < rows; ++i2) {
            for (std::size_t k1 = 0; k1 < cols; ++k1) {
                for (std::size_t k2 = 0; k2 < cols; ++k2) {
                    const Rational c = l(i1, k1) * l(i2, k2);
                    if (c == Rational(0))
                        continue;
                    if constexpr (std::is_integral_v<T>)
                        twq_assert(c.den() == 1,
                                   "integer kron plan needs an "
                                   "integer transform matrix");
                    typename WinoKronPlan<T>::Term term;
                    term.in =
                        static_cast<std::uint16_t>(k1 * cols + k2);
                    term.coeff = static_cast<T>(c.toDouble());
                    plan.terms.push_back(term);
                }
            }
            plan.rowStart.push_back(
                static_cast<std::uint32_t>(plan.terms.size()));
        }
    }
    return plan;
}

template <typename T>
const WinoKronPlan<T> &
winoInputKron(WinoVariant v)
{
    // Lazy per-variant statics: the F6 plan only exists for FP T
    // (the integer builder asserts on its fractional coefficients),
    // so it must not be built eagerly alongside F2/F4.
    switch (v) {
      case WinoVariant::F2: {
        static const WinoKronPlan<T> f2 =
            makeKronPlan<T>(winoBT(WinoVariant::F2));
        return f2;
      }
      case WinoVariant::F4: {
        static const WinoKronPlan<T> f4 =
            makeKronPlan<T>(winoBT(WinoVariant::F4));
        return f4;
      }
      case WinoVariant::F6: {
        static const WinoKronPlan<T> f6 =
            makeKronPlan<T>(winoBT(WinoVariant::F6));
        return f6;
      }
    }
    twq_panic("unknown WinoVariant");
}

template <typename T>
const WinoKronPlan<T> &
winoOutputKron(WinoVariant v)
{
    // Lazy per-variant statics: the F6 plan only exists for FP T
    // (the integer builder asserts on its fractional coefficients),
    // so it must not be built eagerly alongside F2/F4.
    switch (v) {
      case WinoVariant::F2: {
        static const WinoKronPlan<T> f2 =
            makeKronPlan<T>(winoAT(WinoVariant::F2));
        return f2;
      }
      case WinoVariant::F4: {
        static const WinoKronPlan<T> f4 =
            makeKronPlan<T>(winoAT(WinoVariant::F4));
        return f4;
      }
      case WinoVariant::F6: {
        static const WinoKronPlan<T> f6 =
            makeKronPlan<T>(winoAT(WinoVariant::F6));
        return f6;
      }
    }
    twq_panic("unknown WinoVariant");
}

template <typename T>
const WinoKronPlan<T> &
winoInputKronT(WinoVariant v)
{
    // Lazy per-variant statics: the F6 plan only exists for FP T
    // (the integer builder asserts on its fractional coefficients),
    // so it must not be built eagerly alongside F2/F4.
    switch (v) {
      case WinoVariant::F2: {
        static const WinoKronPlan<T> f2 =
            makeKronPlan<T>(winoBT(WinoVariant::F2).transposed());
        return f2;
      }
      case WinoVariant::F4: {
        static const WinoKronPlan<T> f4 =
            makeKronPlan<T>(winoBT(WinoVariant::F4).transposed());
        return f4;
      }
      case WinoVariant::F6: {
        static const WinoKronPlan<T> f6 =
            makeKronPlan<T>(winoBT(WinoVariant::F6).transposed());
        return f6;
      }
    }
    twq_panic("unknown WinoVariant");
}

template <typename T>
const WinoKronPlan<T> &
winoOutputKronT(WinoVariant v)
{
    // Lazy per-variant statics: the F6 plan only exists for FP T
    // (the integer builder asserts on its fractional coefficients),
    // so it must not be built eagerly alongside F2/F4.
    switch (v) {
      case WinoVariant::F2: {
        static const WinoKronPlan<T> f2 =
            makeKronPlan<T>(winoAT(WinoVariant::F2).transposed());
        return f2;
      }
      case WinoVariant::F4: {
        static const WinoKronPlan<T> f4 =
            makeKronPlan<T>(winoAT(WinoVariant::F4).transposed());
        return f4;
      }
      case WinoVariant::F6: {
        static const WinoKronPlan<T> f6 =
            makeKronPlan<T>(winoAT(WinoVariant::F6).transposed());
        return f6;
      }
    }
    twq_panic("unknown WinoVariant");
}

template <typename T>
void
applyKron(const WinoKronPlan<T> &plan, const T *x, std::size_t len,
          T *y)
{
    for (std::size_t r = 0; r < plan.rowsOut; ++r) {
        T *yr = y + r * len;
        const std::uint32_t begin = plan.rowStart[r];
        const std::uint32_t end = plan.rowStart[r + 1];
        if (begin == end) {
            for (std::size_t l = 0; l < len; ++l)
                yr[l] = T{};
            continue;
        }
        {
            const auto &t0 = plan.terms[begin];
            const T *xr = x + t0.in * len;
            const T c = t0.coeff;
            for (std::size_t l = 0; l < len; ++l)
                yr[l] = c * xr[l];
        }
        for (std::uint32_t ti = begin + 1; ti < end; ++ti) {
            const auto &term = plan.terms[ti];
            const T *xr = x + term.in * len;
            const T c = term.coeff;
            for (std::size_t l = 0; l < len; ++l)
                yr[l] += c * xr[l];
        }
    }
}

template <typename T>
void
winogradGatherTiles(const Tensor<T> &input, WinoVariant v,
                    std::size_t pad, Tensor<T> &V)
{
    twq_assert(input.rank() == 4, "winogradGatherTiles expects NCHW");
    const WinoDims d = winoDims(input.shape(), v, pad);
    const std::size_t tt = d.t * d.t;
    const Shape want{tt, d.cin, d.tiles};
    if (V.shape() != want)
        V = Tensor<T>(want);

    const std::size_t h = input.dim(2);
    const std::size_t w = input.dim(3);
    for (std::size_t k = 0; k < tt; ++k) {
        const std::ptrdiff_t dy =
            static_cast<std::ptrdiff_t>(k / d.t) -
            static_cast<std::ptrdiff_t>(pad);
        const std::ptrdiff_t dx =
            static_cast<std::ptrdiff_t>(k % d.t) -
            static_cast<std::ptrdiff_t>(pad);
        for (std::size_t n = 0; n < d.n; ++n) {
            for (std::size_t ic = 0; ic < d.cin; ++ic) {
                const T *plane =
                    input.data() + (n * d.cin + ic) * h * w;
                T *dstc = V.data() + (k * d.cin + ic) * d.tiles +
                          n * d.tilesY * d.tilesX;
                for (std::size_t ty = 0; ty < d.tilesY; ++ty) {
                    T *dst = dstc + ty * d.tilesX;
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(ty * d.m) + dy;
                    if (iy < 0 ||
                        iy >= static_cast<std::ptrdiff_t>(h)) {
                        for (std::size_t tx = 0; tx < d.tilesX; ++tx)
                            dst[tx] = T{};
                        continue;
                    }
                    const T *src =
                        plane + static_cast<std::size_t>(iy) * w;
                    for (std::size_t tx = 0; tx < d.tilesX; ++tx) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(tx * d.m) +
                            dx;
                        dst[tx] =
                            (ix < 0 ||
                             ix >= static_cast<std::ptrdiff_t>(w))
                                ? T{}
                                : src[static_cast<std::size_t>(ix)];
                    }
                }
            }
        }
    }
}

template <typename T>
void
winogradScatterAddTiles(const Tensor<T> &V, WinoVariant v,
                        std::size_t pad, Tensor<T> &grad)
{
    twq_assert(grad.rank() == 4, "winogradScatterAddTiles expects NCHW");
    const WinoDims d = winoDims(grad.shape(), v, pad);
    const std::size_t tt = d.t * d.t;
    twq_assert(V.rank() == 3 && V.dim(0) == tt && V.dim(1) == d.cin &&
                   V.dim(2) == d.tiles,
               "tile buffer does not match the gradient geometry");
    const std::size_t h = grad.dim(2);
    const std::size_t w = grad.dim(3);
    for (std::size_t k = 0; k < tt; ++k) {
        const std::ptrdiff_t dy =
            static_cast<std::ptrdiff_t>(k / d.t) -
            static_cast<std::ptrdiff_t>(pad);
        const std::ptrdiff_t dx =
            static_cast<std::ptrdiff_t>(k % d.t) -
            static_cast<std::ptrdiff_t>(pad);
        for (std::size_t n = 0; n < d.n; ++n) {
            for (std::size_t ic = 0; ic < d.cin; ++ic) {
                T *plane = grad.data() + (n * d.cin + ic) * h * w;
                const T *srcc =
                    V.data() + (k * d.cin + ic) * d.tiles +
                    n * d.tilesY * d.tilesX;
                for (std::size_t ty = 0; ty < d.tilesY; ++ty) {
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(ty * d.m) + dy;
                    if (iy < 0 ||
                        iy >= static_cast<std::ptrdiff_t>(h))
                        continue;
                    T *dst = plane + static_cast<std::size_t>(iy) * w;
                    const T *src = srcc + ty * d.tilesX;
                    for (std::size_t tx = 0; tx < d.tilesX; ++tx) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(tx * d.m) +
                            dx;
                        if (ix < 0 ||
                            ix >= static_cast<std::ptrdiff_t>(w))
                            continue;
                        dst[static_cast<std::size_t>(ix)] += src[tx];
                    }
                }
            }
        }
    }
}

template <typename T>
void
winogradScatter(const Tensor<T> &input, WinoVariant v, std::size_t pad,
                Tensor<T> &V, Tensor<T> &U)
{
    const WinoDims d = winoDims(input.shape(), v, pad);
    winogradGatherTiles(input, v, pad, V);
    const Shape want{d.t * d.t, d.cin, d.tiles};
    if (U.shape() != want)
        U = Tensor<T>(want);
    applyKron(winoInputKron<T>(v), V.data(), d.cin * d.tiles, U.data());
}

template <typename T>
void
winogradTapGemm(const WinogradTapWeights<T> &w, const Tensor<T> &U,
                Tensor<T> &M, gemm::ParallelRunner *runner,
                gemm::PackPool *packs)
{
    twq_assert(U.rank() == 3 && U.dim(1) == w.cin,
               "scatter buffer does not match tap weights");
    const WinoSpec spec = winoSpec(w.variant);
    const std::size_t tt = spec.t * spec.t;
    twq_assert(U.dim(0) == tt, "scatter buffer tap count mismatch");
    const std::size_t tiles = U.dim(2);
    const Shape want{tt, w.cout, tiles};
    if (M.shape() != want)
        M = Tensor<T>(want);
    if (!runner)
        packs = nullptr; // lanes are only exclusive under a runner
    // Shard tap x column-block: taps alone (16 for F2) under-fill
    // many-core pools, so each tap's product additionally splits into
    // P column blocks. Column blocks are bit-identical to the whole
    // product (see gemm::gemmCols), so any shard plan gives the same
    // result.
    gemm::runTapColBlocks(
        runner, tt, tiles, gemm::kNr,
        [&](std::size_t k, std::size_t j0, std::size_t jn,
            std::size_t lane) {
            gemm::gemmCols(w.tap(k),
                           U.data() + k * w.cin * tiles + j0,
                           M.data() + k * w.cout * tiles + j0, w.cout,
                           w.cin, jn, tiles, tiles,
                           gemm::lanePack<T>(packs, lane));
        });
}

template <typename T>
void
winogradUntile(const Tensor<T> &Y, WinoVariant v, Tensor<T> &out,
               const T *bias, bool relu)
{
    const WinoSpec spec = winoSpec(v);
    const std::size_t m = spec.m;
    const std::size_t mm = m * m;
    twq_assert(out.rank() == 4, "winogradUntile expects NCHW output");
    const std::size_t n = out.dim(0);
    const std::size_t cout = out.dim(1);
    const std::size_t ho = out.dim(2);
    const std::size_t wo = out.dim(3);
    const std::size_t tilesY = (ho + m - 1) / m;
    const std::size_t tilesX = (wo + m - 1) / m;
    const std::size_t tiles = n * tilesY * tilesX;
    twq_assert(Y.rank() == 3 && Y.dim(0) == mm && Y.dim(1) == cout &&
                   Y.dim(2) == tiles,
               "tile buffer does not match the output geometry");

    for (std::size_t k = 0; k < mm; ++k) {
        const std::size_t j1 = k / m;
        const std::size_t j2 = k % m;
        for (std::size_t in = 0; in < n; ++in) {
            for (std::size_t oc = 0; oc < cout; ++oc) {
                T *plane = out.data() + (in * cout + oc) * ho * wo;
                const T *srcc = Y.data() + (k * cout + oc) * tiles +
                                in * tilesY * tilesX;
                const T bc = bias ? bias[oc] : T{};
                for (std::size_t ty = 0; ty < tilesY; ++ty) {
                    const std::size_t oy = ty * m + j1;
                    if (oy >= ho)
                        continue;
                    T *dst = plane + oy * wo;
                    const T *src = srcc + ty * tilesX;
                    for (std::size_t tx = 0; tx < tilesX; ++tx) {
                        const std::size_t ox = tx * m + j2;
                        if (ox < wo) {
                            T val = src[tx];
                            if (bias)
                                val += bc;
                            if (relu && val < T{})
                                val = T{};
                            dst[ox] = val;
                        }
                    }
                }
            }
        }
    }
}

template <typename T>
void
winogradGather(const Tensor<T> &M, WinoVariant v, Tensor<T> &Y,
               Tensor<T> &out, const T *bias, bool relu)
{
    const WinoSpec spec = winoSpec(v);
    const std::size_t mm = spec.m * spec.m;
    twq_assert(M.rank() == 3, "winogradGather expects a [tt, C, P] M");
    const std::size_t cout = M.dim(1);
    const std::size_t tiles = M.dim(2);
    const Shape want{mm, cout, tiles};
    if (Y.shape() != want)
        Y = Tensor<T>(want);
    applyKron(winoOutputKron<T>(v), M.data(), cout * tiles, Y.data());
    winogradUntile(Y, v, out, bias, relu);
}

template <typename T>
void
conv2dWinogradTiledInto(const Tensor<T> &input,
                        const WinogradTapWeights<T> &w, std::size_t pad,
                        Tensor<T> &V, Tensor<T> &U, Tensor<T> &M,
                        Tensor<T> &Y, Tensor<T> &out,
                        gemm::ParallelRunner *runner,
                        gemm::PackPool *packs, const T *bias, bool relu)
{
    twq_assert(input.rank() == 4,
               "conv2dWinogradTiled expects an NCHW input");
    twq_assert(input.dim(1) == w.cin,
               "input channels do not match prepared weights");
    const WinoDims d = winoDims(input.shape(), w.variant, pad);
    twq_assert(out.rank() == 4 && out.dim(0) == d.n &&
                   out.dim(1) == w.cout && out.dim(2) == d.ho &&
                   out.dim(3) == d.wo,
               "output tensor not pre-shaped for the tiled launch");
    {
        TWQ_SPAN("wino.gather");
        TWQ_STAGE_PERF("wino.gather");
        winogradGatherTiles(input, w.variant, pad, V);
    }
    {
        TWQ_SPAN("wino.bkron");
        TWQ_STAGE_PERF("wino.bkron");
        const Shape want{d.t * d.t, d.cin, d.tiles};
        if (U.shape() != want)
            U = Tensor<T>(want);
        applyKron(winoInputKron<T>(w.variant), V.data(),
                  d.cin * d.tiles, U.data());
    }
    {
        TWQ_SPAN("wino.tapgemm");
        TWQ_STAGE_PERF("wino.tapgemm");
        winogradTapGemm(w, U, M, runner, packs);
    }
    {
        TWQ_SPAN("wino.untile");
        TWQ_STAGE_PERF("wino.untile");
        winogradGather(M, w.variant, Y, out, bias, relu);
    }
}

template <typename T>
Tensor<T>
conv2dWinogradTiled(const Tensor<T> &input,
                    const WinogradTapWeights<T> &w, std::size_t pad)
{
    const WinoDims d = winoDims(input.shape(), w.variant, pad);
    Tensor<T> V, U, M, Y;
    Tensor<T> out({d.n, w.cout, d.ho, d.wo});
    conv2dWinogradTiledInto(input, w, pad, V, U, M, Y, out);
    return out;
}

template struct WinogradTapWeights<float>;
template struct WinogradTapWeights<double>;
template struct WinoKronPlan<float>;
template struct WinoKronPlan<double>;
template struct WinoKronPlan<std::int32_t>;
template struct WinoKronPlan<std::int64_t>;
template WinogradTapWeights<float>
winogradPrepareTapWeights(const Tensor<float> &, WinoVariant);
template WinogradTapWeights<double>
winogradPrepareTapWeights(const Tensor<double> &, WinoVariant);
template WinogradTapWeights<float>
tapMajorWeights(const WinogradWeights<float> &);
template WinogradTapWeights<double>
tapMajorWeights(const WinogradWeights<double> &);
template WinoKronPlan<float> makeKronPlan(const Matrix<Rational> &);
template WinoKronPlan<double> makeKronPlan(const Matrix<Rational> &);
template WinoKronPlan<std::int32_t>
makeKronPlan(const Matrix<Rational> &);
template WinoKronPlan<std::int64_t>
makeKronPlan(const Matrix<Rational> &);
template const WinoKronPlan<float> &winoInputKron(WinoVariant);
template const WinoKronPlan<double> &winoInputKron(WinoVariant);
template const WinoKronPlan<std::int32_t> &winoInputKron(WinoVariant);
template const WinoKronPlan<std::int64_t> &winoInputKron(WinoVariant);
template const WinoKronPlan<float> &winoOutputKron(WinoVariant);
template const WinoKronPlan<double> &winoOutputKron(WinoVariant);
template const WinoKronPlan<std::int64_t> &winoOutputKron(WinoVariant);
template const WinoKronPlan<double> &winoInputKronT(WinoVariant);
template const WinoKronPlan<double> &winoOutputKronT(WinoVariant);
template void applyKron(const WinoKronPlan<float> &, const float *,
                        std::size_t, float *);
template void applyKron(const WinoKronPlan<double> &, const double *,
                        std::size_t, double *);
template void applyKron(const WinoKronPlan<std::int32_t> &,
                        const std::int32_t *, std::size_t,
                        std::int32_t *);
template void applyKron(const WinoKronPlan<std::int64_t> &,
                        const std::int64_t *, std::size_t,
                        std::int64_t *);
template void winogradGatherTiles(const Tensor<float> &, WinoVariant,
                                  std::size_t, Tensor<float> &);
template void winogradGatherTiles(const Tensor<double> &, WinoVariant,
                                  std::size_t, Tensor<double> &);
template void winogradGatherTiles(const Tensor<std::int64_t> &,
                                  WinoVariant, std::size_t,
                                  Tensor<std::int64_t> &);
template void winogradScatterAddTiles(const Tensor<double> &,
                                      WinoVariant, std::size_t,
                                      Tensor<double> &);
template void winogradScatter(const Tensor<float> &, WinoVariant,
                              std::size_t, Tensor<float> &,
                              Tensor<float> &);
template void winogradScatter(const Tensor<double> &, WinoVariant,
                              std::size_t, Tensor<double> &,
                              Tensor<double> &);
template void winogradTapGemm(const WinogradTapWeights<float> &,
                              const Tensor<float> &, Tensor<float> &,
                              gemm::ParallelRunner *, gemm::PackPool *);
template void winogradTapGemm(const WinogradTapWeights<double> &,
                              const Tensor<double> &, Tensor<double> &,
                              gemm::ParallelRunner *, gemm::PackPool *);
template void winogradUntile(const Tensor<float> &, WinoVariant,
                             Tensor<float> &, const float *, bool);
template void winogradUntile(const Tensor<double> &, WinoVariant,
                             Tensor<double> &, const double *, bool);
template void winogradUntile(const Tensor<std::int64_t> &, WinoVariant,
                             Tensor<std::int64_t> &,
                             const std::int64_t *, bool);
template void winogradGather(const Tensor<float> &, WinoVariant,
                             Tensor<float> &, Tensor<float> &,
                             const float *, bool);
template void winogradGather(const Tensor<double> &, WinoVariant,
                             Tensor<double> &, Tensor<double> &,
                             const double *, bool);
template void conv2dWinogradTiledInto(const Tensor<float> &,
                                      const WinogradTapWeights<float> &,
                                      std::size_t, Tensor<float> &,
                                      Tensor<float> &, Tensor<float> &,
                                      Tensor<float> &, Tensor<float> &,
                                      gemm::ParallelRunner *,
                                      gemm::PackPool *, const float *,
                                      bool);
template void
conv2dWinogradTiledInto(const Tensor<double> &,
                        const WinogradTapWeights<double> &, std::size_t,
                        Tensor<double> &, Tensor<double> &,
                        Tensor<double> &, Tensor<double> &,
                        Tensor<double> &, gemm::ParallelRunner *,
                        gemm::PackPool *, const double *, bool);
template Tensor<float>
conv2dWinogradTiled(const Tensor<float> &,
                    const WinogradTapWeights<float> &, std::size_t);
template Tensor<double>
conv2dWinogradTiled(const Tensor<double> &,
                    const WinogradTapWeights<double> &, std::size_t);

} // namespace twq
