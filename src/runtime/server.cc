#include "runtime/server.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "tensor/batch.hh"

namespace twq
{

namespace
{

std::uint64_t
nsBetween(std::chrono::steady_clock::time_point t0,
          std::chrono::steady_clock::time_point t1)
{
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count();
    return ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
}

std::uint64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    return nsBetween(t0, std::chrono::steady_clock::now());
}

} // namespace

InferenceServer::InferenceServer(std::shared_ptr<const Session> session,
                                 const RuntimeConfig &cfg)
    : session_(std::move(session)), cfg_(cfg),
      reqLatency_(metrics_.histogram("server.request_latency_ns")),
      queueWait_(metrics_.histogram("server.queue_wait_ns")),
      batchSizeHist_(metrics_.histogram("server.batch_size")),
      shedCounter_(metrics_.counter("server.shed")),
      batcher_(cfg.batch), arenas_(cfg.threads),
      pool_(PoolOptions{cfg.threads, cfg.pinWorkers}),
      packPool_(arenas_)
{
    twq_assert(session_ != nullptr, "server needs a session");
    // One runner/context per worker, built once: the executing worker
    // is the caller lane, so lanes coincide with worker indices and
    // every lane's pack buffer lives in that worker's own arena.
    runners_.reserve(cfg_.threads);
    parCtx_.reserve(cfg_.threads);
    for (std::size_t w = 0; w < cfg_.threads; ++w) {
        runners_.emplace_back(pool_, w);
        RunContext ctx;
        ctx.runner = &runners_.back();
        ctx.packs = &packPool_;
        ctx.minParallelMacs = cfg_.minParallelMacs;
        parCtx_.push_back(ctx);
    }
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

void
InferenceServer::enqueue(TensorD input, InferRequest req)
{
    twq_assert(!closed_.load(), "submit() on a shut-down server");
    if (input.rank() == 3) {
        Shape s = input.shape();
        s.insert(s.begin(), 1);
        input = TensorD(s, std::move(input.storage()));
    }
    const Shape &want = session_->inputShape();
    twq_assert(input.shape() == want,
               "request shape does not match the session's network");

    req.id = nextId_.fetch_add(1);
    if (req.traceId == 0)
        req.traceId = obs::mintTraceId();
    req.input = std::move(input);
    // The ingress span is the flow's first slice: recorded under the
    // request's context so Perfetto anchors the arrow at submit time.
    obs::TraceContext traceCtx(req.traceId);
    TWQ_SPAN("server.ingress");
    batcher_.add(std::move(req));
}

bool
InferenceServer::shedNow()
{
    if (cfg_.maxPending == 0)
        return false;
    // In-flight = admitted but not completed. A racing completion can
    // only make the true count smaller, so this may shed one request
    // early at the boundary — never admit past the bound.
    const std::uint64_t inflight =
        nextId_.load() - completed_.load();
    if (inflight < cfg_.maxPending)
        return false;
    shed_.fetch_add(1);
    shedCounter_.inc();
    return true;
}

std::future<TensorD>
InferenceServer::submit(TensorD input)
{
    InferRequest req;
    std::future<TensorD> fut = req.promise.get_future();
    if (shedNow()) {
        req.promise.set_exception(
            std::make_exception_ptr(ServerOverloaded{}));
        return fut;
    }
    enqueue(std::move(input), std::move(req));
    return fut;
}

std::optional<std::future<TensorD>>
InferenceServer::trySubmit(TensorD input)
{
    if (shedNow())
        return std::nullopt;
    InferRequest req;
    std::future<TensorD> fut = req.promise.get_future();
    enqueue(std::move(input), std::move(req));
    return fut;
}

bool
InferenceServer::submitCallback(TensorD input,
                                InferRequest::Respond respond)
{
    twq_assert(respond != nullptr,
               "submitCallback needs a completion callback");
    if (shedNow())
        return false;
    InferRequest req;
    req.respond = [cb = std::move(respond)](
                      TensorD &&out, std::exception_ptr err,
                      const RequestTiming &) {
        cb(std::move(out), err);
    };
    enqueue(std::move(input), std::move(req));
    return true;
}

bool
InferenceServer::submitTimed(TensorD input, std::uint64_t traceId,
                             InferRequest::RespondTimed respond)
{
    twq_assert(respond != nullptr,
               "submitTimed needs a completion callback");
    if (shedNow())
        return false;
    InferRequest req;
    req.traceId = traceId;
    req.respond = std::move(respond);
    enqueue(std::move(input), std::move(req));
    return true;
}

void
InferenceServer::dispatchLoop()
{
    // Flush a partial batch as soon as a worker is idle; only wait
    // out maxWait (hoping for a fuller batch) while all workers are
    // busy anyway.
    obs::setThreadLane("dispatcher");
    const auto workerIdle = [this] {
        return inflightBatches_.load() < cfg_.threads;
    };
    const auto nextBatch = [&]() -> std::optional<Batch> {
        TWQ_SPAN("batcher.wait");
        return batcher_.next(workerIdle);
    };
    while (std::optional<Batch> batch = nextBatch()) {
        inflightBatches_.fetch_add(1);
        // Move the batch into the job; any worker may execute it.
        auto shared = std::make_shared<Batch>(std::move(*batch));
        pool_.submit([this, shared](std::size_t worker) {
            execute(std::move(*shared), worker);
        });
    }
}

void
InferenceServer::execute(Batch batch, std::size_t worker)
{
    // The batch boundary: everything before this instant is queue
    // wait, everything after is batch overhead or compute. The three
    // phases partition enqueue-to-respond exactly (see RequestTiming).
    const auto tBatchStart = std::chrono::steady_clock::now();
    // A batch coalesces many flows; the shared spans (stack, compute,
    // the backend stages inside runInto) join the first request's
    // flow so at least one request renders end-to-end in Perfetto.
    obs::TraceContext batchCtx(
        batch.requests.empty() ? 0 : batch.requests[0].traceId);
    TWQ_SPAN_ARG("server.batch",
                 static_cast<std::int64_t>(batch.size()));
    // Queue wait: enqueue in Batcher::add() to pickup by a worker.
    for (const InferRequest &req : batch.requests)
        queueWait_.record(nsBetween(req.enqueued, tBatchStart));
    batchSizeHist_.record(batch.size());

    std::uint64_t computeNs = 0;
    std::size_t fulfilled = 0;
    try {
        std::vector<const TensorD *> items;
        items.reserve(batch.size());
        for (const InferRequest &req : batch.requests)
            items.push_back(&req.input);

        Shape shape = session_->inputShape();
        shape[0] = batch.size();
        static const ScratchArena::Slot kBatchInput =
            ScratchArena::resolve("server.batch_input");
        static const ScratchArena::Slot kBatchOutput =
            ScratchArena::resolve("server.batch_output");
        ScratchArena &arena = arenas_[worker];
        TensorD &stacked = arena.tensor(kBatchInput, shape);
        {
            TWQ_SPAN("server.stack");
            stackBatch(items, stacked);
        }

        // Shard large layers across the pool only while some workers
        // are idle; under full request-level load every worker has a
        // batch of its own and sharding would just contend.
        const bool shard = cfg_.intraBatchParallel &&
                           cfg_.threads > 1 &&
                           inflightBatches_.load() < cfg_.threads;
        const RunContext ctx =
            shard ? parCtx_[worker] : RunContext{};

        // The batch result lives in a pre-sized arena slot and each
        // response recycles its own request's input storage, so the
        // steady-state serving loop performs no per-batch or
        // per-request allocation.
        Shape oshape = session_->outputShape();
        oshape[0] = batch.size();
        TensorD &out = arena.tensor(kBatchOutput, oshape);
        {
            const auto tCompute = std::chrono::steady_clock::now();
            session_->runInto(stacked, arena, ctx, out);
            computeNs = nsSince(tCompute);
        }

        TWQ_SPAN("server.respond");
        const Shape respShape = session_->outputShape();
        const std::size_t numel = shapeNumel(respShape);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            std::vector<double> buf =
                std::move(batch.requests[i].input.storage());
            buf.resize(numel);
            const double *src = out.data() + i * numel;
            std::copy(src, src + numel, buf.data());
            const auto enqueued = batch.requests[i].enqueued;
            TensorD resp(respShape, std::move(buf));
            // The respond callback (e.g. response encoding on the net
            // path) records under this request's own flow, not the
            // batch leader's.
            obs::TraceContext reqCtx(batch.requests[i].traceId);
            RequestTiming t;
            t.queueNs = nsBetween(enqueued, tBatchStart);
            t.computeNs = computeNs;
            const std::uint64_t sinceBatch = nsSince(tBatchStart);
            t.batchNs =
                sinceBatch > computeNs ? sinceBatch - computeNs : 0;
            // Publish the tracez record BEFORE the response: once a
            // client observes its reply, a /tracez scrape must
            // already see the request's timeline.
            noteSlow(batch.requests[i], t,
                     t.queueNs + t.batchNs + t.computeNs,
                     batch.size());
            if (batch.requests[i].respond)
                batch.requests[i].respond(std::move(resp), nullptr, t);
            else
                batch.requests[i].promise.set_value(std::move(resp));
            reqLatency_.record(nsSince(enqueued));
            ++fulfilled;
        }
    } catch (...) {
        // Fail only the requests not yet responded to; a
        // set_exception on an already-satisfied promise would itself
        // throw and take down the worker.
        const std::exception_ptr err = std::current_exception();
        for (std::size_t i = fulfilled; i < batch.size(); ++i) {
            if (batch.requests[i].respond) {
                batch.requests[i].respond(TensorD{}, err,
                                          RequestTiming{});
                continue;
            }
            try {
                batch.requests[i].promise.set_exception(err);
            } catch (const std::future_error &) {
            }
        }
    }

    {
        // Publish under the drain mutex so a drainer cannot check the
        // counters and then sleep through this batch's notify.
        std::lock_guard<std::mutex> lock(drainMu_);
        batches_.fetch_add(1);
        completed_.fetch_add(batch.size());
    }
    drainCv_.notify_all();
    inflightBatches_.fetch_sub(1);
    batcher_.kick(); // a worker just went idle: partial batches may flush
}

void
InferenceServer::drain()
{
    std::unique_lock<std::mutex> lock(drainMu_);
    drainCv_.wait(lock, [&] {
        return completed_.load() >= nextId_.load();
    });
}

void
InferenceServer::shutdown()
{
    if (closed_.exchange(true))
        return;
    batcher_.close();
    if (dispatcher_.joinable())
        dispatcher_.join();
    pool_.shutdown();
}

ServerStats
InferenceServer::stats() const
{
    ServerStats s;
    {
        // completed_/batches_ are published together under drainMu_,
        // so reading them under the same lock yields a pair from one
        // consistent point in time (no batch counted in one but not
        // the other).
        std::lock_guard<std::mutex> lock(drainMu_);
        s.completed = completed_.load();
        s.batches = batches_.load();
    }
    // Read submitted after completed: a submit racing this snapshot
    // can only make submitted larger, never completed > submitted.
    s.submitted = nextId_.load();
    s.shed = shed_.load();
    return s;
}

obs::MetricsSnapshot
InferenceServer::metricsSnapshot() const
{
    return metrics_.snapshot();
}

std::string
InferenceServer::metricsText() const
{
    return metrics_.snapshot().prometheusText();
}

void
InferenceServer::noteSlow(const InferRequest &req,
                          const RequestTiming &t,
                          std::uint64_t totalNs,
                          std::size_t batchSize)
{
    if (totalNs < cfg_.slowTraceThresholdNs ||
        cfg_.slowTraceSlots == 0)
        return;
    SlowRequestRecord rec;
    rec.id = req.id;
    rec.traceId = req.traceId;
    rec.timing = t;
    rec.totalNs = totalNs;
    rec.batchSize = batchSize;
    rec.whenNs = nsSince(std::chrono::steady_clock::time_point{});
    std::lock_guard<std::mutex> lock(slowMu_);
    if (slowRing_.size() < cfg_.slowTraceSlots) {
        slowRing_.push_back(rec);
        slowNext_ = slowRing_.size() % cfg_.slowTraceSlots;
    } else {
        slowRing_[slowNext_] = rec;
        slowNext_ = (slowNext_ + 1) % cfg_.slowTraceSlots;
    }
    ++slowSeen_;
}

std::vector<SlowRequestRecord>
InferenceServer::slowRequests() const
{
    std::lock_guard<std::mutex> lock(slowMu_);
    std::vector<SlowRequestRecord> out;
    out.reserve(slowRing_.size());
    // Unwrap the ring: slowNext_ points at the oldest entry once the
    // ring has wrapped, at the next free slot before that.
    const std::size_t n = slowRing_.size();
    const std::size_t start =
        n < cfg_.slowTraceSlots ? 0 : slowNext_;
    for (std::size_t k = 0; k < n; ++k)
        out.push_back(slowRing_[(start + k) % n]);
    return out;
}

} // namespace twq
