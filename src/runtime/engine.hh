/**
 * @file
 * Pluggable conv-engine dispatch for the serving runtime.
 *
 * A ConvBackend wraps one of the library's convolution
 * implementations behind a prepare/run split: prepare() does all
 * weight-side work (Winograd weight transform, int8 quantization and
 * calibration) once at session load; run() is the hot path and only
 * touches immutable prepared state plus the caller's scratch arena.
 * The EngineRegistry maps each ConvEngine (xform/engines.hh) to its
 * backend and is open for registration of new engines.
 */

#ifndef TWQ_RUNTIME_ENGINE_HH
#define TWQ_RUNTIME_ENGINE_HH

#include <memory>
#include <mutex>
#include <vector>

#include "models/zoo.hh"
#include "quant/int_winograd.hh"
#include "runtime/arena.hh"
#include "tensor/im2col.hh"
#include "xform/engines.hh"

namespace twq
{

/** Opaque per-layer state produced by ConvBackend::prepare(). */
struct PreparedLayer
{
    virtual ~PreparedLayer() = default;
};

/** Everything a backend may need to prepare one layer. */
struct LayerBuild
{
    ConvParams params;
    WinoVariant variant = WinoVariant::F2;
    /// Quantization settings for the int8 engine; variant and pad are
    /// synchronized with the fields above by the session.
    IntWinogradConfig quant;
    /// Sample inputs of this layer (NCHW) for scale calibration; may
    /// be null for backends that do not calibrate.
    const std::vector<TensorD> *calibration = nullptr;
};

/** One convolution implementation usable by the runtime. */
class ConvBackend
{
  public:
    virtual ~ConvBackend() = default;

    virtual ConvEngine kind() const = 0;

    /** Can this backend execute the layer at all? */
    virtual bool supports(const ConvLayerDesc &desc) const = 0;

    /** One-time weight-side preparation; called off the hot path. */
    virtual std::shared_ptr<const PreparedLayer>
    prepare(const ConvLayerDesc &desc, const TensorD &weights,
            const LayerBuild &build) const = 0;

    /** Output shape for a given (batched) input shape. */
    virtual Shape outputShape(const PreparedLayer &prep,
                              const Shape &input) const = 0;

    /**
     * Execute the layer on a (possibly batched) NCHW input, writing
     * into `out` (pre-shaped to outputShape() by the caller — the
     * session hands out reusable arena activations so the serving
     * loop allocates nothing). Must be thread-safe with respect to
     * `prep`, which is shared between workers; per-call mutable state
     * lives in `scratch`.
     */
    virtual void run(const PreparedLayer &prep, const TensorD &input,
                     ScratchArena &scratch, TensorD &out) const = 0;
};

/**
 * Wall-clock seconds of the fastest of `iters` runs of a prepared
 * layer (after one untimed warmup). Used by SessionConfig::autoSelect
 * and the bench smoke check to compare engines per layer.
 */
double timeBackendRun(const ConvBackend &backend,
                      const PreparedLayer &prep, const TensorD &input,
                      ScratchArena &scratch, int iters = 3);

/**
 * Process-wide table of conv backends, keyed by ConvEngine.
 *
 * Lookups hand out shared ownership: a Session built against a
 * backend keeps it alive even if the registry entry is later
 * replaced, and registration is safe against concurrent lookups.
 */
class EngineRegistry
{
  public:
    /** The registry, with the three built-in backends registered. */
    static EngineRegistry &instance();

    /** Register (or replace) the backend for its engine kind. */
    void registerBackend(std::shared_ptr<ConvBackend> backend);

    /** Look up a backend; panics if none is registered. */
    std::shared_ptr<const ConvBackend> get(ConvEngine e) const;

  private:
    EngineRegistry();

    mutable std::mutex mu_;
    std::vector<std::shared_ptr<ConvBackend>> backends_;
};

} // namespace twq

#endif // TWQ_RUNTIME_ENGINE_HH
