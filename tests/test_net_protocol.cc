/**
 * @file
 * Wire-protocol framing tests: encode/decode round-trips, byte-level
 * layout, and the FrameDecoder state machine under adversarial
 * chunking — partial reads down to one byte, many frames coalesced in
 * one buffer, randomized splits — plus rejection of every malformed
 * frame class (zero/undersized/oversized length, bad magic, unknown
 * type, truncated or oversized body, trailing bytes) and the terminal
 * error state that follows.
 */

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "net/protocol.hh"

using namespace twq;
using net::Frame;
using net::FrameDecoder;
using net::MsgType;
using net::Status;

namespace
{

TensorD
makeTensor(const Shape &shape, std::uint64_t seed)
{
    TensorD t(shape);
    Rng rng(seed);
    rng.fillNormal(t.storage(), 0.0, 1.0);
    return t;
}

std::vector<std::uint8_t>
inferBytes(std::uint64_t id, const TensorD &t)
{
    std::vector<std::uint8_t> out;
    net::encodeInfer(id, t, out);
    return out;
}

void
putU32(std::vector<std::uint8_t> &buf, std::size_t at,
       std::uint32_t v)
{
    buf[at + 0] = static_cast<std::uint8_t>(v);
    buf[at + 1] = static_cast<std::uint8_t>(v >> 8);
    buf[at + 2] = static_cast<std::uint8_t>(v >> 16);
    buf[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

} // namespace

TEST(NetProtocol, InferRoundTrip)
{
    const TensorD t = makeTensor({1, 3, 5, 7}, 1);
    const std::vector<std::uint8_t> bytes = inferBytes(42, t);

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    Frame f;
    ASSERT_EQ(dec.next(&f), FrameDecoder::Result::Frame);
    EXPECT_EQ(f.type, MsgType::Infer);
    EXPECT_EQ(f.id, 42u);
    EXPECT_EQ(f.shape, t.shape());
    EXPECT_EQ(f.data, t.storage()); // bit-identical doubles
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::NeedMore);
    EXPECT_EQ(dec.pendingBytes(), 0u);
}

TEST(NetProtocol, ResponseRoundTrip)
{
    const TensorD t = makeTensor({1, 2, 4, 4}, 2);
    std::vector<std::uint8_t> bytes;
    net::encodeResponse(7, Status::Ok, &t, bytes);

    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    Frame f;
    ASSERT_EQ(dec.next(&f), FrameDecoder::Result::Frame);
    EXPECT_EQ(f.type, MsgType::Response);
    EXPECT_EQ(f.status, Status::Ok);
    EXPECT_EQ(f.id, 7u);
    EXPECT_EQ(f.shape, t.shape());
    EXPECT_EQ(f.data, t.storage());
}

TEST(NetProtocol, NonOkResponseCarriesNoTensor)
{
    for (const Status s :
         {Status::Shed, Status::BadRequest, Status::Error}) {
        std::vector<std::uint8_t> bytes;
        net::encodeResponse(9, s, nullptr, bytes);
        FrameDecoder dec;
        dec.feed(bytes.data(), bytes.size());
        Frame f;
        ASSERT_EQ(dec.next(&f), FrameDecoder::Result::Frame)
            << net::statusName(s);
        EXPECT_EQ(f.status, s);
        EXPECT_TRUE(f.shape.empty());
        EXPECT_TRUE(f.data.empty());
    }
}

TEST(NetProtocol, ByteAtATime)
{
    const TensorD t = makeTensor({2, 3, 3}, 3);
    const std::vector<std::uint8_t> bytes = inferBytes(1, t);

    FrameDecoder dec;
    Frame f;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        dec.feed(&bytes[i], 1);
        ASSERT_EQ(dec.next(&f), FrameDecoder::Result::NeedMore)
            << "frame complete too early at byte " << i;
    }
    dec.feed(&bytes.back(), 1);
    ASSERT_EQ(dec.next(&f), FrameDecoder::Result::Frame);
    EXPECT_EQ(f.data, t.storage());
}

TEST(NetProtocol, CoalescedFrames)
{
    // Many frames in one contiguous buffer — the single-recv() case.
    std::vector<std::uint8_t> wire;
    std::vector<TensorD> tensors;
    constexpr std::size_t kFrames = 17;
    for (std::size_t i = 0; i < kFrames; ++i) {
        tensors.push_back(makeTensor({1, 2, 3, 3}, 10 + i));
        net::encodeInfer(i, tensors.back(), wire);
    }

    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame f;
    for (std::size_t i = 0; i < kFrames; ++i) {
        ASSERT_EQ(dec.next(&f), FrameDecoder::Result::Frame)
            << "frame " << i;
        EXPECT_EQ(f.id, i);
        EXPECT_EQ(f.data, tensors[i].storage());
    }
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::NeedMore);
    EXPECT_EQ(dec.pendingBytes(), 0u);
}

TEST(NetProtocol, RandomizedChunkingFuzz)
{
    // The stream invariant: any chunking of the same bytes yields the
    // same frame sequence. 50 rounds of random frame counts, shapes,
    // and split points.
    Rng rng(1234);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::uint8_t> wire;
        std::vector<std::vector<double>> payloads;
        const std::size_t nFrames =
            static_cast<std::size_t>(rng.uniformInt(1, 6));
        for (std::size_t i = 0; i < nFrames; ++i) {
            const auto dim = [&](int hi) {
                return static_cast<std::size_t>(
                    rng.uniformInt(1, hi));
            };
            const TensorD t = makeTensor(
                {1, dim(4), dim(5), dim(5)}, round * 100 + i);
            payloads.push_back(t.storage());
            net::encodeInfer(i, t, wire);
        }

        FrameDecoder dec;
        Frame f;
        std::size_t fed = 0, decoded = 0;
        while (fed < wire.size()) {
            const std::size_t chunk = std::min(
                wire.size() - fed,
                static_cast<std::size_t>(rng.uniformInt(1, 64)));
            dec.feed(wire.data() + fed, chunk);
            fed += chunk;
            for (;;) {
                const FrameDecoder::Result r = dec.next(&f);
                if (r != FrameDecoder::Result::Frame)
                    break;
                ASSERT_LT(decoded, payloads.size());
                EXPECT_EQ(f.id, decoded);
                EXPECT_EQ(f.data, payloads[decoded]);
                ++decoded;
            }
            ASSERT_FALSE(dec.failed()) << dec.error();
        }
        EXPECT_EQ(decoded, nFrames) << "round " << round;
        EXPECT_EQ(dec.pendingBytes(), 0u);
    }
}

TEST(NetProtocol, ZeroLengthFrameRejected)
{
    // payloadLen == 0 cannot even cover the magic/type/id header.
    const std::uint8_t zeros[4] = {0, 0, 0, 0};
    FrameDecoder dec;
    dec.feed(zeros, sizeof(zeros));
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::Error);
    EXPECT_TRUE(dec.failed());
    EXPECT_FALSE(dec.error().empty());
}

TEST(NetProtocol, UndersizedLengthRejected)
{
    std::vector<std::uint8_t> wire =
        inferBytes(1, makeTensor({1, 1, 2, 2}, 4));
    putU32(wire, 0, static_cast<std::uint32_t>(
                        net::kFrameHeaderBytes - 1));
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::Error);
}

TEST(NetProtocol, OversizedFrameRejected)
{
    // A length prefix over the decoder's ceiling must fail
    // immediately — BEFORE any payload arrives, so a hostile peer
    // cannot make the server buffer unbounded input.
    std::vector<std::uint8_t> wire =
        inferBytes(1, makeTensor({1, 1, 2, 2}, 5));
    FrameDecoder dec(1024); // 1 KiB ceiling
    putU32(wire, 0, 1 << 20);
    dec.feed(wire.data(), 8); // length + magic only
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::Error);
}

TEST(NetProtocol, BadMagicRejected)
{
    std::vector<std::uint8_t> wire =
        inferBytes(1, makeTensor({1, 1, 2, 2}, 6));
    putU32(wire, 4, 0xdeadbeef);
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::Error);
}

TEST(NetProtocol, UnknownTypeRejected)
{
    std::vector<std::uint8_t> wire =
        inferBytes(1, makeTensor({1, 1, 2, 2}, 7));
    wire[8] = 0x7f; // type byte
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::Error);
}

TEST(NetProtocol, TruncatedBodyRejected)
{
    // Shrink the declared payload so the tensor data no longer fits:
    // a well-formed length prefix whose body lies about its tensor.
    const TensorD t = makeTensor({1, 1, 2, 2}, 8);
    std::vector<std::uint8_t> wire = inferBytes(1, t);
    putU32(wire, 0,
           static_cast<std::uint32_t>(net::kFrameHeaderBytes + 1 +
                                      4 * t.rank()));
    wire.resize(4 + net::kFrameHeaderBytes + 1 + 4 * t.rank());
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::Error);
}

TEST(NetProtocol, TrailingBytesRejected)
{
    // Grow the declared payload past the tensor: trailing garbage in
    // a frame means a frame the encoder never produced.
    const TensorD t = makeTensor({1, 1, 2, 2}, 9);
    std::vector<std::uint8_t> wire = inferBytes(1, t);
    const std::uint32_t declared =
        static_cast<std::uint32_t>(wire.size() - 4);
    putU32(wire, 0, declared + 3);
    wire.insert(wire.end(), {0xaa, 0xbb, 0xcc});
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::Error);
}

TEST(NetProtocol, ErrorStateIsTerminal)
{
    const std::uint8_t zeros[4] = {0, 0, 0, 0};
    FrameDecoder dec;
    dec.feed(zeros, sizeof(zeros));
    Frame f;
    ASSERT_EQ(dec.next(&f), FrameDecoder::Result::Error);

    // A valid frame fed AFTER the error must not resurrect the
    // decoder: framing cannot resynchronize on a byte stream.
    const std::vector<std::uint8_t> good =
        inferBytes(1, makeTensor({1, 1, 2, 2}, 10));
    dec.feed(good.data(), good.size());
    EXPECT_EQ(dec.next(&f), FrameDecoder::Result::Error);
    EXPECT_TRUE(dec.failed());
}
