/**
 * @file
 * Event-driven tile-pipeline simulation of one operator execution.
 *
 * The paper profiles the system with an event-based simulator
 * (Section V-B1): data movements and computations advance in
 * double-buffered stages, the DRAM serves requests in order with a
 * fixed mean latency (150 core cycles) plus a zero-mean Gaussian
 * jitter (sigma = 5). This module provides that dynamic view on top
 * of the analytical operator model: the operator is decomposed into
 * work blocks, each block flows through the
 * LOAD -> XFORM -> CUBE -> POST -> STORE pipeline, and stage
 * occupancy follows the classic double-buffering recurrence
 *
 *   finish[s][i] = max(finish[s][i-1], finish[s-1][i]) + cost[s][i].
 *
 * The steady-state throughput converges to the analytical
 * max-of-stages bound; the simulation adds fill/drain and jitter, and
 * reports per-stage stall statistics. A paired unit test pins the
 * agreement between the two models (the paper reports <= 5%
 * simulator-vs-RTL deviation; we hold the dynamic and analytical
 * models to a similar band).
 */

#ifndef TWQ_SIM_PIPELINE_HH
#define TWQ_SIM_PIPELINE_HH

#include <array>
#include <cstdint>

#include "sim/operators.hh"

namespace twq
{

/** Pipeline stages of the dynamic model. */
enum class PipeStage
{
    Load,   ///< MTE2: DRAM -> L1 (iFM + weights)
    Xform,  ///< MTE1: input/weight transformation engines
    Cube,   ///< Cube Unit MatMul
    Post,   ///< FixPipe/Vector: output transform + requantization
    Store,  ///< MTE3: UB -> DRAM
};

constexpr std::size_t kPipeStages = 5;

/** Result of one dynamic simulation. */
struct PipelineResult
{
    double cycles = 0.0; ///< completion time of the last block
    /// Cycles each stage spent blocked on its producer (fill) or
    /// consumer (back-pressure).
    std::array<double, kPipeStages> stallCycles{};
    /// Busy cycles per stage (sum of block costs incl. jitter).
    std::array<double, kPipeStages> busyCycles{};
    std::size_t blocks = 0;

    /** Utilization of a stage in [0, 1]. */
    double
    utilization(PipeStage s) const
    {
        const auto i = static_cast<std::size_t>(s);
        return cycles > 0.0 ? busyCycles[i] / cycles : 0.0;
    }
};

/**
 * Dynamically simulate an operator execution.
 *
 * @param perf  analytical result from simulateConv (provides the
 *              per-stage totals and traffic).
 * @param cfg   accelerator configuration (DRAM latency/jitter).
 * @param seed  jitter seed; identical seeds replay identical runs.
 * @param blocks number of work blocks; 0 derives a block count from
 *              the Cube occupancy (~512 Cube cycles per block).
 */
PipelineResult simulatePipeline(const OpPerf &perf,
                                const AcceleratorConfig &cfg,
                                std::uint64_t seed = 1,
                                std::size_t blocks = 0);

} // namespace twq

#endif // TWQ_SIM_PIPELINE_HH
