/**
 * @file
 * Serving-runtime throughput benchmark.
 *
 * Two regimes are measured per conv engine and workload:
 *
 *   bulk-*  open-loop: all requests submitted up front, batches fill
 *           to maxBatch, dispatch overhead amortizes — the offline /
 *           high-offered-load regime. bulk-base (1 worker, batch 1)
 *           is the single-thread batch-1 baseline the batched
 *           configurations are compared against.
 *   loop-*  closed-loop clients (submit, block on the future,
 *           repeat) — the interactive regime; p50/p99 here are
 *           end-to-end request latency.
 *
 * A third section drives the same server through the epoll network
 * front door over loopback TCP (net-loop-* / net-bulk-* rows across
 * worker counts, plus an unloaded/overload pair showing admission
 * control bounding the admitted tail).
 *
 * Reports requests/sec and p50/p99/p99.9 latency per configuration,
 * and writes the machine-readable BENCH_runtime.json so future PRs
 * can track the perf trajectory.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "gemm/gemm.hh"
#include "layout/kernels_f16.hh"
#include "layout/wino_blocked.hh"
#include "models/zoo.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "obs/perf.hh"
#include "obs/trace.hh"
#include "runtime/server.hh"
#include "winograd/tiled.hh"

namespace twq
{
namespace
{

using Clock = std::chrono::steady_clock;

struct Result
{
    const char *engine;
    std::string label; ///< owned: some labels are built at runtime
    std::size_t threads;
    std::size_t maxBatch;
    std::size_t clients;
    std::size_t requests;
    double wallSec;
    double reqPerSec;
    double p50Ms;
    double p99Ms;
    double p999Ms = -1.0;
    double avgBatch;
    /// Requests rejected by admission control (network rows under
    /// offered overload); latency percentiles above cover ADMITTED
    /// requests only — the bounded-latency claim of load shedding.
    std::uint64_t shed = 0;
    /// Server-side request-latency quantiles from the obs histogram
    /// (enqueue to fulfillment); -1 when the row has no server (layer
    /// microbenchmarks) or obs is compiled out. Tracked against the
    /// client-observed p50/p99 above: the two must agree to within
    /// one log2 bucket.
    double histP50Ms = -1.0;
    double histP99Ms = -1.0;
    /// Hardware-counter profile of the measured region (summed over
    /// the instrumented backend stages, all worker threads): retired
    /// instructions per cycle and cache misses per reference. -1 when
    /// perf_event_open is unavailable (container policy, TWQ_NO_PERF)
    /// or obs is compiled out — absence is explicit, not zero.
    double ipc = -1.0;
    double missRate = -1.0;
};

/** Arm the per-stage hardware-counter rollup for one measured row. */
void
beginRowPerf()
{
    obs::PerfStageCollector::global().reset();
    obs::PerfStageCollector::global().enable();
}

/**
 * Stop the rollup and fold its counters into the row: one sample
 * summed across stages and worker threads. Leaves r.ipc/r.missRate
 * at -1 when nothing valid was measured.
 */
void
endRowPerf(Result &r)
{
    auto &coll = obs::PerfStageCollector::global();
    coll.disable();
    obs::PerfCounters sum;
    for (const auto &[name, t] : coll.totals())
        sum += t.counters;
    coll.reset();
    if (sum.valid && sum.cycles > 0) {
        r.ipc = sum.ipc();
        r.missRate = sum.missRate();
    }
}

/**
 * Start a server and run warmup requests through it (arenas, lazy
 * allocations, scheduler); returns the post-warmup stats snapshot so
 * measured batch sizes exclude the warmup.
 */
std::unique_ptr<InferenceServer>
makeWarmServer(const std::shared_ptr<const Session> &session,
               std::size_t threads, std::size_t maxBatch,
               ServerStats *statsBefore)
{
    RuntimeConfig rcfg;
    rcfg.threads = threads;
    rcfg.batch.maxBatch = maxBatch;
    rcfg.batch.maxWait = std::chrono::microseconds(200);
    auto server = std::make_unique<InferenceServer>(session, rcfg);
    std::vector<std::future<TensorD>> warm;
    for (std::size_t i = 0; i < 8; ++i)
        warm.push_back(
            server->submit(TensorD(session->inputShape(), 0.5)));
    for (auto &f : warm)
        f.get();
    server->drain();
    *statsBefore = server->stats();
    return server;
}

Result
runConfig(const std::shared_ptr<const Session> &session,
          ConvEngine engine, const char *label, std::size_t threads,
          std::size_t maxBatch, std::size_t clients,
          std::size_t requests)
{
    ServerStats statsBefore;
    auto serverPtr =
        makeWarmServer(session, threads, maxBatch, &statsBefore);
    InferenceServer &server = *serverPtr;
    // Drop the warmup requests from the server-side histograms so the
    // snapshot below covers exactly the measured requests.
    server.metrics().reset();
    beginRowPerf();

    // One distinct input per client, generated up front.
    std::vector<TensorD> inputs;
    for (std::size_t c = 0; c < clients; ++c) {
        TensorD in(session->inputShape());
        Rng rng(1000 + c);
        rng.fillNormal(in.storage(), 0.0, 1.0);
        inputs.push_back(std::move(in));
    }

    std::vector<std::vector<double>> perClient(clients);
    const std::size_t perClientReqs = requests / clients;
    const auto wallStart = Clock::now();
    std::vector<std::thread> clientThreads;
    for (std::size_t c = 0; c < clients; ++c) {
        clientThreads.emplace_back([&, c] {
            perClient[c].reserve(perClientReqs);
            for (std::size_t i = 0; i < perClientReqs; ++i) {
                const auto t0 = Clock::now();
                server.submit(inputs[c]).get();
                const auto t1 = Clock::now();
                perClient[c].push_back(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
            }
        });
    }
    for (auto &t : clientThreads)
        t.join();
    const double wallSec =
        std::chrono::duration<double>(Clock::now() - wallStart).count();
    server.drain();
    const ServerStats stats = server.stats();
    const obs::MetricsSnapshot snap = server.metricsSnapshot();
    server.shutdown();
    const double avgBatch =
        static_cast<double>(stats.completed - statsBefore.completed) /
        static_cast<double>(stats.batches - statsBefore.batches);

    std::vector<double> latencies;
    for (const auto &v : perClient)
        latencies.insert(latencies.end(), v.begin(), v.end());

    Result r;
    r.engine = convEngineName(engine);
    r.label = label;
    r.threads = threads;
    r.maxBatch = maxBatch;
    r.clients = clients;
    r.requests = latencies.size();
    r.wallSec = wallSec;
    r.reqPerSec = static_cast<double>(latencies.size()) / wallSec;
    r.p50Ms = percentile(latencies, 0.50);
    r.p99Ms = percentile(latencies, 0.99);
    r.p999Ms = percentile(latencies, 0.999);
    r.avgBatch = avgBatch;
    if (const auto it =
            snap.histograms.find("server.request_latency_ns");
        it != snap.histograms.end() && it->second.count > 0) {
        r.histP50Ms = it->second.p50Ms();
        r.histP99Ms = it->second.p99Ms();
    }
    endRowPerf(r);
    return r;
}

/**
 * Open-loop (bulk) throughput: all requests are submitted up front,
 * so the queue stays deep, batches fill to maxBatch, and the
 * per-request dispatch/wakeup chain amortizes across each batch —
 * the offline / high-offered-load serving regime. p50/p99 here are
 * time-in-system, dominated by queueing.
 */
Result
runOpenLoop(const std::shared_ptr<const Session> &session,
            ConvEngine engine, const char *label, std::size_t threads,
            std::size_t maxBatch, std::size_t requests)
{
    ServerStats statsBefore;
    auto serverPtr =
        makeWarmServer(session, threads, maxBatch, &statsBefore);
    InferenceServer &server = *serverPtr;
    server.metrics().reset();
    beginRowPerf();

    TensorD input(session->inputShape());
    Rng rng(7);
    rng.fillNormal(input.storage(), 0.0, 1.0);

    std::vector<std::future<TensorD>> futures;
    futures.reserve(requests);
    std::vector<Clock::time_point> submitted(requests);
    const auto wallStart = Clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
        submitted[i] = Clock::now();
        futures.push_back(server.submit(input));
    }
    std::vector<double> latencies;
    latencies.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
        futures[i].get();
        latencies.push_back(std::chrono::duration<double, std::milli>(
                                Clock::now() - submitted[i])
                                .count());
    }
    const double wallSec =
        std::chrono::duration<double>(Clock::now() - wallStart).count();
    server.drain();
    const ServerStats stats = server.stats();
    const obs::MetricsSnapshot snap = server.metricsSnapshot();
    server.shutdown();

    Result r;
    r.engine = convEngineName(engine);
    r.label = label;
    r.threads = threads;
    r.maxBatch = maxBatch;
    r.clients = 1;
    r.requests = requests;
    r.wallSec = wallSec;
    r.reqPerSec = static_cast<double>(requests) / wallSec;
    r.p50Ms = percentile(latencies, 0.50);
    r.p99Ms = percentile(latencies, 0.99);
    r.p999Ms = percentile(latencies, 0.999);
    // Warmup requests are excluded from the mean batch size.
    r.avgBatch =
        static_cast<double>(stats.completed - statsBefore.completed) /
        static_cast<double>(stats.batches - statsBefore.batches);
    if (const auto it =
            snap.histograms.find("server.request_latency_ns");
        it != snap.histograms.end() && it->second.count > 0) {
        r.histP50Ms = it->second.p50Ms();
        r.histP99Ms = it->second.p99Ms();
    }
    endRowPerf(r);
    return r;
}

// ------------------------------------------------ network serving

/**
 * Closed-loop clients over the epoll front door on loopback: each
 * client connects a real TCP socket, then send -> recv -> repeat.
 * Latency is the full wire round trip (encode, socket, decode,
 * batch, inference, response). With `maxPending` nonzero the server
 * sheds overload; percentiles then cover ADMITTED (Ok) responses
 * only, which is exactly the bounded-latency claim of fast-fail
 * shedding — shed responses are counted, not timed.
 */
Result
runNetClosed(const std::shared_ptr<const Session> &session,
             ConvEngine engine, const std::string &label,
             std::size_t threads, std::size_t maxBatch,
             std::size_t clients, std::size_t requests,
             std::size_t maxPending)
{
    RuntimeConfig rcfg;
    rcfg.threads = threads;
    rcfg.batch.maxBatch = maxBatch;
    rcfg.batch.maxWait = std::chrono::microseconds(200);
    rcfg.pinWorkers = true; // the affinity knob, exercised end to end
    rcfg.maxPending = maxPending;
    InferenceServer server(session, rcfg);
    net::NetServer front(server, net::NetConfig{});
    const std::uint16_t port = front.start();

    // Warm arenas/plans through the wire path itself.
    {
        net::Client warm;
        warm.connect("127.0.0.1", port);
        TensorD in(session->inputShape(), 0.5);
        for (int i = 0; i < 8; ++i)
            warm.infer(in);
    }
    server.metrics().reset();
    beginRowPerf();

    const std::size_t perClient = requests / clients;
    std::vector<std::vector<double>> okLat(clients);
    std::vector<std::uint64_t> shedCount(clients, 0);
    const auto wallStart = Clock::now();
    std::vector<std::thread> threadsV;
    for (std::size_t c = 0; c < clients; ++c) {
        threadsV.emplace_back([&, c] {
            TensorD in(session->inputShape());
            Rng rng(3000 + c);
            rng.fillNormal(in.storage(), 0.0, 1.0);
            net::Client client;
            client.connect("127.0.0.1", port);
            okLat[c].reserve(perClient);
            for (std::size_t i = 0; i < perClient; ++i) {
                const auto t0 = Clock::now();
                const net::Frame f = client.infer(in);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
                if (f.status == net::Status::Ok) {
                    okLat[c].push_back(ms);
                } else {
                    ++shedCount[c];
                    // Retry backoff: a shed answer returns in ~100us,
                    // so without it overloading clients degenerate
                    // into a hot spin that starves the very workers
                    // whose admitted latency the row measures.
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }
            }
        });
    }
    for (auto &t : threadsV)
        t.join();
    const double wallSec =
        std::chrono::duration<double>(Clock::now() - wallStart)
            .count();
    const obs::MetricsSnapshot snap = server.metricsSnapshot();
    front.shutdown();
    server.shutdown();

    std::vector<double> latencies;
    std::uint64_t shed = 0;
    for (std::size_t c = 0; c < clients; ++c) {
        latencies.insert(latencies.end(), okLat[c].begin(),
                         okLat[c].end());
        shed += shedCount[c];
    }

    Result r;
    r.engine = convEngineName(engine);
    r.label = label;
    r.threads = threads;
    r.maxBatch = maxBatch;
    r.clients = clients;
    r.requests = latencies.size();
    r.wallSec = wallSec;
    r.reqPerSec = static_cast<double>(latencies.size()) / wallSec;
    r.p50Ms = percentile(latencies, 0.50);
    r.p99Ms = percentile(latencies, 0.99);
    r.p999Ms = percentile(latencies, 0.999);
    r.avgBatch = -1.0;
    r.shed = shed;
    if (const auto it = snap.histograms.find("server.batch_size");
        it != snap.histograms.end() && it->second.count > 0)
        r.avgBatch = it->second.mean();
    if (const auto it =
            snap.histograms.find("server.request_latency_ns");
        it != snap.histograms.end() && it->second.count > 0) {
        r.histP50Ms = it->second.p50Ms();
        r.histP99Ms = it->second.p99Ms();
    }
    endRowPerf(r);
    return r;
}

/**
 * Open-loop over the wire: one connection, a sender thread pipelines
 * every request without waiting, the receiver times each response
 * against its send timestamp — time-in-system under a deep offered
 * queue, the network counterpart of the in-process bulk rows.
 */
Result
runNetOpen(const std::shared_ptr<const Session> &session,
           ConvEngine engine, const std::string &label,
           std::size_t threads, std::size_t requests)
{
    RuntimeConfig rcfg;
    rcfg.threads = threads;
    rcfg.batch.maxBatch = 8;
    rcfg.batch.maxWait = std::chrono::microseconds(200);
    rcfg.pinWorkers = true;
    InferenceServer server(session, rcfg);
    net::NetServer front(server, net::NetConfig{});
    const std::uint16_t port = front.start();

    net::Client client;
    client.connect("127.0.0.1", port);
    TensorD in(session->inputShape());
    Rng rng(17);
    rng.fillNormal(in.storage(), 0.0, 1.0);
    for (int i = 0; i < 8; ++i)
        client.infer(in); // warm the wire path
    server.metrics().reset();
    beginRowPerf();

    // Send timestamps cross the sender->receiver boundary through
    // relaxed atomics; the socket round trip itself orders the write
    // (send i happens before response i is produced).
    std::vector<std::atomic<std::int64_t>> sentNs(requests);
    const auto wallStart = Clock::now();
    std::thread sender([&] {
        for (std::size_t i = 0; i < requests; ++i) {
            sentNs[i].store(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - wallStart)
                    .count(),
                std::memory_order_relaxed);
            client.send(in);
        }
        client.shutdownWrite();
    });

    std::vector<double> latencies;
    latencies.reserve(requests);
    net::Frame f;
    std::size_t firstId = 0;
    while (client.recv(&f)) {
        if (firstId == 0)
            firstId = f.id; // ids are monotonic per client
        const std::size_t idx = f.id - firstId;
        const std::int64_t nowNs =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - wallStart)
                .count();
        latencies.push_back(
            static_cast<double>(
                nowNs - sentNs[idx].load(std::memory_order_relaxed)) *
            1e-6);
    }
    sender.join();
    const double wallSec =
        std::chrono::duration<double>(Clock::now() - wallStart)
            .count();
    const obs::MetricsSnapshot snap = server.metricsSnapshot();
    front.shutdown();
    server.shutdown();

    Result r;
    r.engine = convEngineName(engine);
    r.label = label;
    r.threads = threads;
    r.maxBatch = 8;
    r.clients = 1;
    r.requests = latencies.size();
    r.wallSec = wallSec;
    r.reqPerSec = static_cast<double>(latencies.size()) / wallSec;
    r.p50Ms = percentile(latencies, 0.50);
    r.p99Ms = percentile(latencies, 0.99);
    r.p999Ms = percentile(latencies, 0.999);
    r.avgBatch = -1.0;
    if (const auto it = snap.histograms.find("server.batch_size");
        it != snap.histograms.end() && it->second.count > 0)
        r.avgBatch = it->second.mean();
    if (const auto it =
            snap.histograms.find("server.request_latency_ns");
        it != snap.histograms.end() && it->second.count > 0) {
        r.histP50Ms = it->second.p50Ms();
        r.histP99Ms = it->second.p99Ms();
    }
    endRowPerf(r);
    return r;
}

/**
 * The scaling requirement for the net matrix's 8-thread row relative
 * to its 1-thread row, scaled to the machine the bench runs on: the
 * ISSUE's >= 4x target presumes >= 8 usable cores. With fewer cores
 * the requirement degrades to ~0.45x per available core (admitting
 * scheduler losses), and on a single core only "no collapse" (>=
 * 0.55x — extra worker threads must not halve throughput).
 */
double
requiredScaling(std::size_t hwCores)
{
    if (hwCores >= 8)
        return 4.0;
    if (hwCores >= 2)
        return 0.45 * static_cast<double>(hwCores);
    return 0.55;
}

/**
 * CI smoke check. Twelve structural gates:
 *
 *  1. the blocked GEMM core must beat the naive i-k-j loop it
 *     replaced on a representative per-tap shape,
 *  2. winograd-fp32 must beat im2col on a wide (64-channel) eligible
 *     layer, where the Winograd arithmetic advantage materializes,
 *  3. the NCHWc8 tile gather must not lose to the NCHW gather it
 *     bypasses (the unit-stride claim of the layout subsystem),
 *  4. end-to-end blocked-layout winograd must not lose to NCHW
 *     winograd on the wide layer (steady-state, activations already
 *     blocked — the regime layout propagation creates),
 *  5. autoSelect must actually pick the blocked engine on that layer,
 *  6. the dispatched int8 -> int32 widening micro-kernel must not
 *     lose to the generic blocked widening kernel it replaced on a
 *     representative per-tap GEMM shape (equal on hosts where the
 *     dispatch resolves to the generic scalar kernel),
 *  7. end-to-end blocked int8 winograd must not lose to NCHW
 *     int-winograd on the wide layer (the quantized counterpart of
 *     gate 4), and
 *  8. autoSelect must pick the blocked int8 engine on the wide
 *     quantized layer (racing NCHW int-winograd and im2col-int8),
 *  9. open-loop throughput through the epoll front door must scale
 *     from 1 to 8 workers by at least requiredScaling(hw) — 4x on
 *     hosts with >= 8 cores, degrading with core count down to a
 *     no-collapse bound on a single core, and
 * 10. under offered overload (8 closed-loop clients, maxPending=2)
 *     admission control must keep the ADMITTED p99 within 5x of the
 *     unloaded p99 — shedding buys bounded latency, not silence,
 * 11. the fused bias+ReLU epilogue must not lose to the plain blocked
 *     conv followed by a separate bias/ReLU pass on the wide layer —
 *     the deleted memory pass must actually buy time, and
 * 12. the binary16-storage blocked engine must hold >= 0.9x the fp32
 *     blocked session's end-to-end throughput on a three-deep wide-64
 *     chain while its output stays within 40 half-ULPs of the fp32
 *     output range (on soft-half hosts the throughput requirement
 *     degrades to a no-collapse bound; the accuracy bound always
 *     holds).
 *
 * The timed gates carry a 10% slack so a scheduling blip on a shared
 * CI runner cannot flip a structural claim into a flake; an actual
 * regression (typically 2x+) still trips them by a wide margin.
 *
 * The per-layer table on the micro net is informational only: with
 * both engines on the blocked core, im2col now wins the very small
 * layers (its single GEMM amortizes better than scatter/gather at
 * tiny widths) — exactly the trade SessionConfig::autoSelect measures
 * per layer. Returns the number of failed gates.
 */
int
runSmoke()
{
    const NetworkDesc net = microServeNet(16, 8);
    const EngineRegistry &registry = EngineRegistry::instance();
    const auto im2col = registry.get(ConvEngine::Im2col);
    const auto wino = registry.get(ConvEngine::WinogradFp32);

    std::printf("=== Smoke: per-layer winograd-fp32 vs im2col "
                "(batch 8, best of 5; informational — autoSelect "
                "picks per layer) ===\n");
    std::printf("%-12s %12s %12s %8s\n", "layer", "im2col us",
                "winograd us", "speedup");
    int failures = 0;
    std::uint64_t seed = 0x5eed;
    for (const ConvLayerDesc &d : net.expandedLayers()) {
        if (!d.winogradEligible())
            continue;
        LayerBuild build;
        build.params = ConvParams{d.kernel, d.stride,
                                  (d.kernel - 1) / 2};
        build.variant = WinoVariant::F2;
        TensorD weights({d.cout, d.cin, d.kernel, d.kernel});
        Rng wrng(seed++);
        wrng.fillNormal(weights.storage(), 0.0, 0.1);
        const auto prepIm = im2col->prepare(d, weights, build);
        const auto prepWino = wino->prepare(d, weights, build);

        TensorD probe({8, d.cin, d.height, d.width});
        Rng prng(seed++);
        prng.fillNormal(probe.storage(), 0.0, 1.0);
        ScratchArena arena;
        const double tIm =
            timeBackendRun(*im2col, *prepIm, probe, arena, 7);
        const double tWino =
            timeBackendRun(*wino, *prepWino, probe, arena, 7);
        std::printf("%-12s %12.1f %12.1f %7.2fx\n", d.name.c_str(),
                    tIm * 1e6, tWino * 1e6, tIm / tWino);
    }

    // Gate 2: on a wide eligible layer the Winograd path must win.
    // Gates 3-5: on the same layer, the blocked layout must hold its
    // structural claims (gather, end-to-end, autoSelect pick).
    {
        ConvLayerDesc d;
        d.name = "wide-64";
        d.cin = 64;
        d.cout = 64;
        d.kernel = 3;
        d.stride = 1;
        d.height = 16;
        d.width = 16;
        LayerBuild build;
        build.params = ConvParams{3, 1, 1};
        build.variant = WinoVariant::F2;
        TensorD weights({d.cout, d.cin, 3, 3});
        Rng wrng(seed++);
        wrng.fillNormal(weights.storage(), 0.0, 0.1);
        const auto prepIm = im2col->prepare(d, weights, build);
        const auto prepWino = wino->prepare(d, weights, build);
        TensorD probe({8, d.cin, d.height, d.width});
        Rng prng(seed++);
        prng.fillNormal(probe.storage(), 0.0, 1.0);
        ScratchArena arena;
        const double tIm =
            timeBackendRun(*im2col, *prepIm, probe, arena, 7);
        const double tWino =
            timeBackendRun(*wino, *prepWino, probe, arena, 7);
        // 10% slack so a scheduling blip on a shared CI runner cannot
        // flip the structural claim into a flake.
        const bool ok = tWino < 1.10 * tIm;
        failures += !ok;
        std::printf("%-12s %12.1f %12.1f %7.2fx%s\n", d.name.c_str(),
                    tIm * 1e6, tWino * 1e6, tIm / tWino,
                    ok ? "" : "  << FAIL: winograd slower on wide");

        TensorD probeBlocked(blockedShape(probe.shape()));
        nchwToBlocked(probe, probeBlocked);

        // Gate 3: the NCHWc8 gather (8-wide unit-stride block moves)
        // against the strided NCHW gather it replaces.
        {
            const auto bestOf = [&](auto &&fn) {
                fn(); // warmup (shapes the tile buffer)
                double best = 1e30;
                for (int i = 0; i < 7; ++i) {
                    const auto t0 = Clock::now();
                    fn();
                    best = std::min(
                        best,
                        std::chrono::duration<double>(Clock::now() -
                                                      t0)
                            .count());
                }
                return best;
            };
            TensorD vNchw, vBlocked;
            const double tGather = bestOf([&] {
                winogradGatherTiles(probe, WinoVariant::F2, 1, vNchw);
            });
            const double tGatherB = bestOf([&] {
                winogradGatherTilesBlocked(probeBlocked,
                                           WinoVariant::F2, 1,
                                           vBlocked);
            });
            const bool gok = tGatherB < 1.10 * tGather;
            failures += !gok;
            std::printf("gather[wide-64] nchw %.1f us, nchwc8 %.1f "
                        "us, %.2fx%s\n",
                        tGather * 1e6, tGatherB * 1e6,
                        tGather / tGatherB,
                        gok ? ""
                            : "  << FAIL: blocked gather slower");
        }

        // Gate 4: end-to-end blocked winograd vs NCHW winograd, both
        // consuming their native steady-state input layout.
        const auto blocked =
            registry.get(ConvEngine::WinogradBlocked);
        const auto prepBlocked = blocked->prepare(d, weights, build);
        const double tBlocked = timeBackendRun(
            *blocked, *prepBlocked, probeBlocked, arena, 7);
        const bool bok = tBlocked < 1.10 * tWino;
        failures += !bok;
        std::printf("%-12s %12.1f %12.1f %7.2fx%s\n", "wide-64-c8",
                    tWino * 1e6, tBlocked * 1e6, tWino / tBlocked,
                    bok ? ""
                        : "  << FAIL: blocked wino slower than NCHW");

        // Gate 5: the measured policy must land on the blocked
        // engine for this layer.
        NetworkDesc wideNet;
        wideNet.name = "Wide64";
        wideNet.inputRes = d.height;
        wideNet.layers.push_back(d);
        SessionConfig scfg;
        scfg.autoSelect = true;
        // This gate asserts the LOCAL race winner; on an isolated
        // single-layer net the chain DP rightly charges the blocked
        // pick an ingress+egress seam, which is gate 13's subject.
        scfg.chainDp = false;
        const Session sel(wideNet, scfg);
        const bool sok =
            sel.layerEngine(0) == ConvEngine::WinogradBlocked;
        failures += !sok;
        std::printf("autoSelect[wide-64] -> %s (%s)%s\n",
                    convEngineName(sel.layerEngine(0)),
                    winoName(sel.layerVariant(0)),
                    sok ? "" : "  << FAIL: blocked path not selected");

        // Gate 7: the quantized counterpart of gate 4 — blocked int8
        // winograd against NCHW int-winograd, both on their native
        // steady-state input layout, both with the same calibration.
        {
            TensorD calT({2, d.cin, d.height, d.width});
            Rng calRng(seed++);
            calRng.fillNormal(calT.storage(), 0.0, 1.0);
            std::vector<TensorD> cal{calT};
            LayerBuild qbuild = build;
            qbuild.calibration = &cal;
            const auto intWino =
                registry.get(ConvEngine::WinogradInt8);
            const auto intBlocked =
                registry.get(ConvEngine::WinogradBlockedInt8);
            const auto prepInt =
                intWino->prepare(d, weights, qbuild);
            const auto prepIntB =
                intBlocked->prepare(d, weights, qbuild);
            const double tInt =
                timeBackendRun(*intWino, *prepInt, probe, arena, 7);
            const double tIntB = timeBackendRun(
                *intBlocked, *prepIntB, probeBlocked, arena, 7);
            const bool qok = tIntB < 1.10 * tInt;
            failures += !qok;
            std::printf("%-12s %12.1f %12.1f %7.2fx%s\n",
                        "wide-64-i8c8", tInt * 1e6, tIntB * 1e6,
                        tInt / tIntB,
                        qok ? ""
                            : "  << FAIL: blocked int8 slower than "
                              "NCHW int8");
        }

        // Gate 8: the measured quantized policy must land on the
        // blocked int8 engine (the race includes NCHW int-winograd
        // F2/F4 and im2col-int8).
        {
            SessionConfig qcfg;
            qcfg.defaultEngine = ConvEngine::WinogradInt8;
            qcfg.autoSelect = true;
            qcfg.chainDp = false; // local winner, as in gate 5
            const Session qsel(wideNet, qcfg);
            const bool qsok = qsel.layerEngine(0) ==
                              ConvEngine::WinogradBlockedInt8;
            failures += !qsok;
            std::printf("autoSelect[wide-64-int8] -> %s (%s)%s\n",
                        convEngineName(qsel.layerEngine(0)),
                        winoName(qsel.layerVariant(0)),
                        qsok ? ""
                             : "  << FAIL: blocked int8 path not "
                               "selected");
        }

        // Gate 11: the fused epilogue must actually delete the
        // separate bias/ReLU memory pass — the blocked engine with
        // bias+ReLU folded into its untile write against the plain
        // blocked run followed by a second pass over the output
        // surface (what an unfused session executes).
        {
            LayerBuild fbuild = build;
            fbuild.epilogue.bias.assign(d.cout, 0.0);
            Rng brng(seed++);
            brng.fillNormal(fbuild.epilogue.bias, 0.0, 0.1);
            fbuild.epilogue.relu = true;
            const auto prepFused =
                blocked->prepare(d, weights, fbuild);
            const double tFused = timeBackendRun(
                *blocked, *prepFused, probeBlocked, arena, 7);
            TensorD outP(blocked->outputShape(*prepBlocked,
                                              probeBlocked.shape()));
            const auto bestOf = [&](auto &&fn) {
                fn(); // warmup
                double best = 1e30;
                for (int i = 0; i < 7; ++i) {
                    const auto t0 = Clock::now();
                    fn();
                    best = std::min(
                        best,
                        std::chrono::duration<double>(Clock::now() -
                                                      t0)
                            .count());
                }
                return best;
            };
            const std::vector<double> &bias = fbuild.epilogue.bias;
            const double tSep = bestOf([&] {
                blocked->run(*prepBlocked, probeBlocked, arena, outP);
                double *p = outP.data();
                const std::size_t hw =
                    outP.shape()[2] * outP.shape()[3];
                for (std::size_t n = 0; n < outP.shape()[0]; ++n)
                    for (std::size_t b = 0; b < outP.shape()[1]; ++b)
                        for (std::size_t i = 0; i < hw; ++i)
                            for (std::size_t l = 0; l < kLayoutBlock;
                                 ++l) {
                                const double v =
                                    *p + bias[b * kLayoutBlock + l];
                                *p++ = v < 0.0 ? 0.0 : v;
                            }
            });
            const bool fok = tFused < 1.10 * tSep;
            failures += !fok;
            std::printf("%-12s %12.1f %12.1f %7.2fx%s\n",
                        "wide-64-fuse", tSep * 1e6, tFused * 1e6,
                        tSep / tFused,
                        fok ? ""
                            : "  << FAIL: fused epilogue slower than "
                              "separate pass");
        }

        // Gate 12: binary16 activation/weight storage, end to end on
        // a three-deep wide-64 chain (interior layer handoffs stay
        // half — the inter-layer bandwidth regime the engine
        // targets). The fp16 session must hold >= 0.9x the fp32
        // blocked session's throughput AND land within 40 half-ULPs
        // (40 * 2^-11) of the fp32 output range. On hosts where the
        // conversion kernels fall back to soft-half the throughput
        // requirement degrades to a no-collapse bound — accuracy is
        // host-independent and never relaxes.
        {
            NetworkDesc deep;
            deep.name = "Wide64x3";
            deep.inputRes = d.height;
            for (int i = 0; i < 3; ++i) {
                ConvLayerDesc l = d;
                l.name = "wide." + std::to_string(i);
                deep.layers.push_back(l);
            }
            SessionConfig f32cfg;
            f32cfg.defaultEngine = ConvEngine::WinogradBlocked;
            const Session s32(deep, f32cfg);
            SessionConfig f16cfg;
            f16cfg.defaultEngine = ConvEngine::WinogradBlockedF16;
            const Session s16(deep, f16cfg);
            TensorD in({8, d.cin, d.height, d.width});
            Rng irng(seed++);
            irng.fillNormal(in.storage(), 0.0, 1.0);
            const TensorD y32 = s32.run(in);
            const TensorD y16 = s16.run(in);
            double maxAbs = 0.0, maxErr = 0.0;
            for (std::size_t i = 0; i < y32.numel(); ++i) {
                maxAbs = std::max(maxAbs, std::abs(y32[i]));
                maxErr = std::max(maxErr, std::abs(y16[i] - y32[i]));
            }
            const bool aok = maxErr <= 40.0 * 0x1p-11 * maxAbs;
            const auto bestOf = [&](const Session &s,
                                    ScratchArena &a) {
                s.run(in, a); // warmup
                double best = 1e30;
                for (int i = 0; i < 7; ++i) {
                    const auto t0 = Clock::now();
                    s.run(in, a);
                    best = std::min(
                        best,
                        std::chrono::duration<double>(Clock::now() -
                                                      t0)
                            .count());
                }
                return best;
            };
            ScratchArena a32, a16;
            const double t32 = bestOf(s32, a32);
            const double t16 = bestOf(s16, a16);
            const bool soft =
                std::strcmp(layout::f16KernelName(), "soft") == 0;
            const double need = soft ? 0.25 : 0.9;
            const double ratio = t32 / t16;
            const bool hok = aok && ratio >= need;
            failures += !hok;
            std::printf(
                "f16[wide-64x3] kernel=%s: fp32 %.1f us, fp16 %.1f "
                "us, %.2fx (need >= %.2fx), max err %.3g of range "
                "%.3g%s\n",
                layout::f16KernelName(), t32 * 1e6, t16 * 1e6, ratio,
                need, maxErr, maxAbs,
                hok ? ""
                    : (aok ? "  << FAIL: fp16 throughput below bound"
                           : "  << FAIL: fp16 accuracy gate"));
        }

        // Gate 13: chain-aware layout planning must never lose to
        // the per-layer argmin it replaces — on a three-deep wide-64
        // chain the DP sees the same measured candidate tables plus
        // the seam conversion costs, so its plan is the argmin plan
        // or a strictly cheaper one. 10% slack absorbs probe noise
        // (both builds race live and may measure different rounds).
        {
            NetworkDesc deep;
            deep.name = "Wide64x3";
            deep.inputRes = d.height;
            for (int i = 0; i < 3; ++i) {
                ConvLayerDesc l = d;
                l.name = "wide." + std::to_string(i);
                deep.layers.push_back(l);
            }
            SessionConfig acfg;
            acfg.autoSelect = true;
            acfg.chainDp = false;
            const Session argmin(deep, acfg);
            SessionConfig dcfg;
            dcfg.autoSelect = true;
            dcfg.chainDp = true;
            const Session dp(deep, dcfg);
            TensorD in({8, d.cin, d.height, d.width});
            Rng irng(seed++);
            irng.fillNormal(in.storage(), 0.0, 1.0);
            const auto bestOf = [&](const Session &s,
                                    ScratchArena &a) {
                s.run(in, a); // warmup
                double best = 1e30;
                for (int i = 0; i < 7; ++i) {
                    const auto t0 = Clock::now();
                    s.run(in, a);
                    best = std::min(
                        best,
                        std::chrono::duration<double>(Clock::now() -
                                                      t0)
                            .count());
                }
                return best;
            };
            ScratchArena aa, ad;
            const double tArgmin = bestOf(argmin, aa);
            const double tDp = bestOf(dp, ad);
            const bool cok = tDp < 1.10 * tArgmin;
            failures += !cok;
            std::printf("%-12s %12.1f %12.1f %7.2fx  (%s/%s -> "
                        "%s/%s)%s\n",
                        "wide-64-dp", tArgmin * 1e6, tDp * 1e6,
                        tArgmin / tDp,
                        convEngineName(argmin.layerEngine(0)),
                        winoName(argmin.layerVariant(0)),
                        convEngineName(dp.layerEngine(0)),
                        winoName(dp.layerVariant(0)),
                        cok ? ""
                            : "  << FAIL: chain DP lost to per-layer "
                              "argmin");
        }
    }

    // Blocked-GEMM gate: on a representative [Cout, Cin] x [Cin, P]
    // per-tap shape, the blocked micro-kernel must beat the naive
    // i-k-j loop it replaced — the structural claim of the GEMM
    // subsystem.
    {
        const std::size_t M = 64, K = 64, P = 1024;
        Rng rng(123);
        std::vector<double> a(M * K), b(K * P), c(M * P);
        for (auto &v : a)
            v = rng.normal();
        for (auto &v : b)
            v = rng.normal();
        const auto bestOf = [&](auto &&fn) {
            using Clock = std::chrono::steady_clock;
            fn(); // warmup
            double best = 1e30;
            for (int i = 0; i < 7; ++i) {
                const auto t0 = Clock::now();
                fn();
                best = std::min(
                    best, std::chrono::duration<double>(Clock::now() -
                                                        t0)
                              .count());
            }
            return best;
        };
        const double tNaive = bestOf([&] {
            gemm::referenceGemm(a.data(), b.data(), c.data(), M, K, P);
        });
        const double tBlocked = bestOf([&] {
            gemm::gemm(a.data(), b.data(), c.data(), M, K, P);
        });
        const bool ok = tBlocked < 1.10 * tNaive;
        failures += !ok;
        std::printf("\ngemm[%zux%zux%zu] kernel=%s: naive %.1f us, "
                    "blocked %.1f us, %.2fx%s\n",
                    M, K, P, gemm::kernelName(), tNaive * 1e6,
                    tBlocked * 1e6, tNaive / tBlocked,
                    ok ? "" : "  << FAIL: blocked GEMM slower");

        // Gate 6: the dispatched int8 widening micro-kernel against
        // the generic blocked widening kernel on the same per-tap
        // shape. On hosts without a SIMD int8 kernel the dispatch IS
        // the generic kernel and the ratio sits at 1.0 — inside the
        // gate's slack by construction.
        std::vector<std::int8_t> a8(M * K), b8(K * P);
        for (auto &v : a8)
            v = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        for (auto &v : b8)
            v = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        std::vector<std::int32_t> c32(M * P);
        const double tGeneric = bestOf([&] {
            gemm::gemmS8S32Generic(a8.data(), b8.data(), c32.data(),
                                   M, K, P, P, P);
        });
        const double tWiden = bestOf([&] {
            gemm::gemmS8S32(a8.data(), b8.data(), c32.data(), M, K,
                            P);
        });
        const bool i8ok = tWiden < 1.10 * tGeneric;
        failures += !i8ok;
        std::printf("gemm-s8[%zux%zux%zu] kernel=%s: generic %.1f "
                    "us, widening %.1f us, %.2fx%s\n",
                    M, K, P, gemm::int8KernelName(), tGeneric * 1e6,
                    tWiden * 1e6, tGeneric / tWiden,
                    i8ok ? ""
                         : "  << FAIL: widening kernel slower than "
                           "generic");
    }

    // Gates 9-10: the network front door. Both run the micro net
    // through real loopback TCP sockets.
    {
        SessionConfig scfg;
        scfg.defaultEngine = ConvEngine::WinogradFp32;
        auto session = std::make_shared<const Session>(net, scfg);
        const std::size_t hw = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());

        // Gate 9: worker scaling over the wire, open loop (one deep
        // pipelined connection keeps every worker fed). The required
        // ratio adapts to the host's core count — the 4x target
        // presumes 8 usable cores.
        const Result t1 = runNetOpen(
            session, ConvEngine::WinogradFp32, "smoke-net-t1", 1, 192);
        const Result t8 = runNetOpen(
            session, ConvEngine::WinogradFp32, "smoke-net-t8", 8, 192);
        const double need = requiredScaling(hw);
        const double ratio = t8.reqPerSec / t1.reqPerSec;
        const bool nok = ratio >= need;
        failures += !nok;
        std::printf("\nnet scaling: 1 worker %.1f req/s, 8 workers "
                    "%.1f req/s, %.2fx (need >= %.2fx on %zu "
                    "cores)%s\n",
                    t1.reqPerSec, t8.reqPerSec, ratio, need, hw,
                    nok ? "" : "  << FAIL: front door does not scale");

        // Gate 10: shedding bounds the admitted tail. The unloaded
        // row is the floor; the overload row offers 4 closed-loop
        // clients against maxPending=2, so an admitted request waits
        // behind at most one other yet the offered load stays well
        // above capacity. A heavier net than gate 9's keeps the
        // per-request service time well above scheduler jitter — with
        // a ~0.2 ms request, timeslice noise from the client threads
        // on a small host swamps the queueing term the gate is
        // actually about (the full 8-client row lives in the bench's
        // network matrix; the gate trades offered-load margin for
        // noise immunity).
        SessionConfig hcfg;
        hcfg.defaultEngine = ConvEngine::WinogradFp32;
        auto heavy = std::make_shared<const Session>(
            microServeNet(32, 16), hcfg);
        const Result unloaded =
            runNetClosed(heavy, ConvEngine::WinogradFp32,
                         "smoke-net-unloaded", hw, 1, 1, 64, 0);
        const Result overload =
            runNetClosed(heavy, ConvEngine::WinogradFp32,
                         "smoke-net-overload", hw, 1, 4, 384, 2);
        const bool pok = overload.requests >= 1 &&
                         overload.shed >= 1 &&
                         overload.p99Ms <= 5.0 * unloaded.p99Ms;
        failures += !pok;
        std::printf("net overload: unloaded p99 %.3f ms, admitted "
                    "p99 under overload %.3f ms (%.2fx, need <= "
                    "5.00x), %zu ok / %llu shed%s\n",
                    unloaded.p99Ms, overload.p99Ms,
                    overload.p99Ms / unloaded.p99Ms, overload.requests,
                    static_cast<unsigned long long>(overload.shed),
                    pok ? ""
                        : "  << FAIL: overload tail unbounded or "
                          "nothing shed");
    }

    // Whole-net bulk context (includes the im2col-only layers).
    for (ConvEngine engine :
         {ConvEngine::Im2col, ConvEngine::WinogradFp32}) {
        SessionConfig scfg;
        scfg.defaultEngine = engine;
        auto session =
            std::make_shared<const Session>(net, scfg);
        const Result r =
            runOpenLoop(session, engine, "bulk-b8-1w", 1, 8, 96);
        std::printf("whole-net %-14s bulk-b8-1w: %10.1f req/s\n",
                    convEngineName(engine), r.reqPerSec);
    }
    std::printf(failures == 0
                    ? "\nSMOKE PASS: blocked GEMM beats naive, "
                      "winograd-fp32 beats im2col on the wide layer, "
                      "the NCHWc8 layout holds its gather / "
                      "end-to-end / autoSelect claims, the int8 "
                      "path holds its widening-kernel / blocked "
                      "end-to-end / autoSelect claims, the fused "
                      "epilogue beats the separate pass, binary16 "
                      "storage holds throughput inside the accuracy "
                      "gate, and the net front door scales with "
                      "workers and bounds the admitted tail under "
                      "overload\n"
                    : "\nSMOKE FAIL: %d gate(s) failed\n",
                failures);
    return failures;
}

/**
 * Single-batch large-layer latency: one batched input through one
 * winograd-fp32 layer, p50 over repeated runs, in three modes —
 * the pre-GEMM-subsystem naive per-tap loop (the PR 2 baseline,
 * reconstructed from the stage API), the blocked kernel serial, and
 * the blocked kernel with the per-tap GEMMs sharded across a worker
 * pool. Measured on the widest (most MACs) eligible layer of the
 * micro-8 net and on a wide 64-channel layer representing the
 * ROADMAP's "wide layers" regime.
 */
void
runLayerLatency(const ConvLayerDesc &d, const char *tag,
                std::size_t batch, std::size_t hw,
                std::vector<Result> &results)
{
    TensorD weights({d.cout, d.cin, 3, 3});
    Rng wrng(0xabc);
    wrng.fillNormal(weights.storage(), 0.0, 0.1);
    const auto w = winogradPrepareTapWeights(weights, WinoVariant::F2);

    TensorD probe({batch, d.cin, d.height, d.width});
    Rng prng(0xdef);
    prng.fillNormal(probe.storage(), 0.0, 1.0);
    const WinoDims dims = winoDims(probe.shape(), WinoVariant::F2, 1);
    TensorD V, U, M, Y;
    TensorD out({batch, d.cout, dims.ho, dims.wo});

    ThreadPool pool(hw);
    PoolRunner runner(pool, pool.size());

    constexpr int kIters = 60;
    const auto measure = [&](const std::string &label, auto &&fn) {
        using Clock = std::chrono::steady_clock;
        fn(); // warmup (shapes buffers)
        std::vector<double> ms;
        ms.reserve(kIters);
        const auto wall0 = Clock::now();
        for (int i = 0; i < kIters; ++i) {
            const auto t0 = Clock::now();
            fn();
            ms.push_back(std::chrono::duration<double, std::milli>(
                             Clock::now() - t0)
                             .count());
        }
        Result r;
        r.engine = "winograd-fp32";
        r.label = label;
        r.threads = hw;
        r.maxBatch = batch;
        r.clients = 1;
        r.requests = kIters;
        r.wallSec =
            std::chrono::duration<double>(Clock::now() - wall0).count();
        r.reqPerSec = kIters / r.wallSec;
        r.p50Ms = percentile(ms, 0.50);
        r.p99Ms = percentile(ms, 0.99);
        r.p999Ms = percentile(ms, 0.999);
        r.avgBatch = static_cast<double>(batch);
        results.push_back(r);
        return r.p50Ms;
    };

    const std::string naiveL = std::string(tag) + "-naive";
    const std::string serialL = std::string(tag) + "-serial";
    const std::string parL = std::string(tag) + "-par";
    const std::string blkL = std::string(tag) + "-blocked";
    const std::string blkParL = std::string(tag) + "-blocked-par";

    const double pNaive = measure(naiveL, [&] {
        // The PR 2 execution: scatter, naive i-k-j per-tap products,
        // gather.
        winogradScatter(probe, WinoVariant::F2, 1, V, U);
        const std::size_t tt = dims.t * dims.t;
        const Shape want{tt, d.cout, dims.tiles};
        if (M.shape() != want)
            M = TensorD(want);
        for (std::size_t k = 0; k < tt; ++k)
            gemm::referenceGemm(w.tap(k),
                                U.data() + k * d.cin * dims.tiles,
                                M.data() + k * d.cout * dims.tiles,
                                d.cout, d.cin, dims.tiles);
        winogradGather(M, WinoVariant::F2, Y, out);
    });
    const double pSerial = measure(serialL, [&] {
        conv2dWinogradTiledInto(probe, w, 1, V, U, M, Y, out);
    });
    const double pPar = measure(parL, [&] {
        conv2dWinogradTiledInto(probe, w, 1, V, U, M, Y, out, &runner);
    });

    // The NCHWc8 blocked-layout pipeline on the same layer,
    // steady-state (input already blocked, as layout propagation
    // keeps it between blocked layers). Rows land in the JSON under
    // engine "winograd-blocked".
    const BlockedTapWeights bw = blockedTapWeights(w);
    TensorD probeBlocked(blockedShape(probe.shape()));
    nchwToBlocked(probe, probeBlocked);
    TensorD Vb, Ub, Mb, Yb;
    TensorD outb({batch, bw.coutb, dims.ho, dims.wo, kLayoutBlock});
    const char *engineSave = "winograd-blocked";
    const auto measureBlocked = [&](const std::string &label,
                                    auto &&fn) {
        const std::size_t at = results.size();
        const double p50 = measure(label, fn);
        results[at].engine = engineSave;
        return p50;
    };
    const double pBlk = measureBlocked(blkL, [&] {
        conv2dWinogradBlockedInto(probeBlocked, bw, 1, Vb, Ub, Mb, Yb,
                                  outb);
    });
    const double pBlkPar = measureBlocked(blkParL, [&] {
        conv2dWinogradBlockedInto(probeBlocked, bw, 1, Vb, Ub, Mb, Yb,
                                  outb, &runner);
    });
    pool.shutdown();
    std::printf("layer %-10s [%zux%zu @ %zux%zu, b%zu] p50: naive "
                "%.3f ms, blocked-gemm %.3f ms, +parallel %.3f ms "
                "(%.2fx vs naive); nchwc8 %.3f ms, +parallel %.3f ms "
                "(%.2fx vs nchw wino)\n",
                tag, d.cout, d.cin, d.height, d.width, batch, pNaive,
                pSerial, pPar, pNaive / std::min(pSerial, pPar), pBlk,
                pBlkPar, pSerial / std::min(pBlk, pBlkPar));
}

void
writeJson(const std::vector<Result> &results,
          const std::map<std::string, obs::StageTotal> &stages,
          const std::map<std::string, obs::PerfStageTotal> &stagePerf,
          const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::perror("BENCH_runtime.json");
        return;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"runtime_throughput\",\n");
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        std::fprintf(
            f,
            "    {\"engine\": \"%s\", \"config\": \"%s\", "
            "\"threads\": %zu, \"max_batch\": %zu, \"clients\": %zu, "
            "\"requests\": %zu, \"wall_sec\": %.6f, "
            "\"req_per_sec\": %.2f, \"p50_ms\": %.4f, "
            "\"p99_ms\": %.4f, \"p999_ms\": %.4f, "
            "\"avg_batch\": %.2f, \"shed\": %llu, "
            "\"hist_p50_ms\": %.4f, \"hist_p99_ms\": %.4f, "
            "\"ipc\": %.3f, \"cache_miss_rate\": %.4f}%s\n",
            r.engine, r.label.c_str(), r.threads, r.maxBatch, r.clients,
            r.requests, r.wallSec, r.reqPerSec, r.p50Ms, r.p99Ms,
            r.p999Ms, r.avgBatch,
            static_cast<unsigned long long>(r.shed), r.histP50Ms,
            r.histP99Ms, r.ipc, r.missRate,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Per-stage rollup of the traced wide-64 autoSelect run: where a
    // request's time actually goes (gather vs B-kron vs per-tap GEMM
    // vs untile...), from the same spans a tracePath trace shows —
    // with each stage's hardware-counter profile (IPC, cache miss
    // rate) when perf_event_open was available. Empty when built
    // with TWQ_NO_OBS.
    std::fprintf(f, "  \"stage_breakdown\": [\n");
    std::size_t emitted = 0;
    for (const auto &[name, t] : stages) {
        std::fprintf(f,
                     "    {\"stage\": \"%s\", \"count\": %llu, "
                     "\"total_ms\": %.4f",
                     name.c_str(),
                     static_cast<unsigned long long>(t.count),
                     static_cast<double>(t.totalNs) * 1e-6);
        if (const auto it = stagePerf.find(name);
            it != stagePerf.end() && it->second.counters.valid)
            std::fprintf(f, ", \"ipc\": %.3f, \"cache_miss_rate\": %.4f",
                         it->second.counters.ipc(),
                         it->second.counters.missRate());
        std::fprintf(f, "}%s\n",
                     ++emitted < stages.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

/**
 * Observability overhead gate: p50 of the steady-state wide-64
 * blocked FP layer (serial, input already blocked — the hottest
 * instrumented path), printed as one machine-readable line. CI builds
 * this bench twice, default and -DTWQ_NO_OBS=ON, and asserts the
 * instrumented-but-disabled build stays within 5% of the stub build —
 * the budget for the one predicted branch each disabled span costs.
 */
int
runObsGate()
{
    ConvLayerDesc d;
    d.name = "wide-64";
    d.cin = 64;
    d.cout = 64;
    d.kernel = 3;
    d.stride = 1;
    d.height = 16;
    d.width = 16;
    const auto blocked =
        EngineRegistry::instance().get(ConvEngine::WinogradBlocked);
    LayerBuild build;
    build.params = ConvParams{3, 1, 1};
    build.variant = WinoVariant::F2;
    TensorD weights({d.cout, d.cin, 3, 3});
    Rng wrng(0x0b5);
    wrng.fillNormal(weights.storage(), 0.0, 0.1);
    const auto prep = blocked->prepare(d, weights, build);
    TensorD probe({8, d.cin, d.height, d.width});
    Rng prng(0x0b6);
    prng.fillNormal(probe.storage(), 0.0, 1.0);
    TensorD probeBlocked(blockedShape(probe.shape()));
    nchwToBlocked(probe, probeBlocked);
    ScratchArena arena;
    TensorD out(blocked->outputShape(*prep, probeBlocked.shape()));
    blocked->run(*prep, probeBlocked, arena, out); // warmup
    constexpr int kIters = 200;
    std::vector<double> ms;
    ms.reserve(kIters);
    for (int i = 0; i < kIters; ++i) {
        const auto t0 = Clock::now();
        blocked->run(*prep, probeBlocked, arena, out);
        ms.push_back(std::chrono::duration<double, std::milli>(
                         Clock::now() - t0)
                         .count());
    }
    std::printf("OBS_GATE_P50_MS %.5f\n", percentile(ms, 0.50));
    return 0;
}

} // namespace
} // namespace twq

int
main(int argc, char **argv)
{
    using namespace twq;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            return runSmoke() == 0 ? 0 : 1;
        if (std::strcmp(argv[i], "--obs-gate") == 0)
            return runObsGate();
        std::fprintf(stderr, "usage: %s [--smoke|--obs-gate]\n",
                     argv[0]);
        return 2;
    }

    const std::size_t hw = std::max<std::size_t>(
        2, std::min<std::size_t>(std::thread::hardware_concurrency(), 8));

    std::vector<Result> results;
    std::map<std::string, obs::StageTotal> stages;
    std::map<std::string, obs::PerfStageTotal> stagePerf;
    struct Workload
    {
        const char *name;
        std::size_t res;
        std::size_t width;
        std::size_t requests;
    };
    // micro-8 is the serving-overhead-bound regime; micro-16 is
    // compute-bound (16x the MACs per request). Cheap requests get a
    // larger sample to keep the measurement out of scheduler noise.
    const Workload workloads[] = {{"micro-8", 8, 4, 1024},
                                  {"micro-16", 16, 8, 192}};

    for (const Workload &wl : workloads) {
        const std::size_t kRequests = wl.requests;
        std::printf("=== Serving throughput: %s net, %zu "
                    "requests/config, %zu hw threads ===\n\n",
                    wl.name, kRequests, hw);
        std::printf("%-14s %-10s %8s %6s %8s %10s %9s %9s %6s\n",
                    "engine", "config", "threads", "batch", "clients",
                    "req/s", "p50 ms", "p99 ms", "avgB");

        for (ConvEngine engine : kAllConvEngines) {
            SessionConfig scfg;
            scfg.defaultEngine = engine;
            auto session = std::make_shared<const Session>(
                microServeNet(wl.res, wl.width), scfg);

            // Open-loop (bulk) regime: the acceptance comparison.
            const Result obase = runOpenLoop(
                session, engine, "bulk-base", 1, 1, kRequests);
            const Result obatch1 = runOpenLoop(
                session, engine, "bulk-b8-1w", 1, 8, kRequests);
            const Result obatch = runOpenLoop(
                session, engine, "bulk-b8", hw, 8, kRequests);

            // Closed-loop regime: interactive latency numbers.
            const Result cbase = runConfig(
                session, engine, "loop-base", 1, 1, 1, kRequests);
            const Result cthreads = runConfig(
                session, engine, "loop-thr", hw, 1, hw, kRequests);
            const Result cbatch = runConfig(
                session, engine, "loop-b8", hw, 8, 2 * hw, kRequests);

            const Result *best = &obatch1;
            if (obatch.reqPerSec > best->reqPerSec)
                best = &obatch;
            for (const Result &r : {obase, obatch1, obatch, cbase,
                                    cthreads, cbatch}) {
                std::printf("%-14s %-10s %8zu %6zu %8zu %10.1f %9.3f "
                            "%9.3f %6.2f\n",
                            r.engine, r.label.c_str(), r.threads,
                            r.maxBatch, r.clients, r.reqPerSec, r.p50Ms,
                            r.p99Ms, r.avgBatch);
                results.push_back(r);
            }
            std::printf("  -> %s/%s: batched runtime (%s) is %.2fx "
                        "the single-thread batch-1 baseline\n\n",
                        wl.name, convEngineName(engine),
                        best->label.c_str(),
                        best->reqPerSec / obase.reqPerSec);
        }
    }

    // Network serving matrix: the same requests through the epoll
    // front door over loopback TCP, so every row pays the full wire
    // cost (encode, socket, framing, decode) on top of inference.
    // Closed-loop rows run 2*t clients in lockstep; open-loop rows
    // pipeline one deep connection. Worker counts sweep past the
    // physical core count on purpose — the tail of the sweep shows
    // where affinity-pinned workers stop helping on this host.
    {
        const std::size_t kNetRequests = 192;
        SessionConfig scfg;
        scfg.defaultEngine = ConvEngine::WinogradFp32;
        auto session = std::make_shared<const Session>(
            microServeNet(16, 8), scfg);
        std::printf("=== Network serving (loopback TCP, epoll front "
                    "door, pinned workers, %zu requests/row) ===\n\n",
                    kNetRequests);
        std::printf("%-14s %-14s %8s %8s %10s %9s %9s %9s %6s\n",
                    "engine", "config", "threads", "clients", "req/s",
                    "p50 ms", "p99 ms", "p99.9 ms", "shed");
        const auto show = [&](const Result &r) {
            std::printf("%-14s %-14s %8zu %8zu %10.1f %9.3f %9.3f "
                        "%9.3f %6llu\n",
                        r.engine, r.label.c_str(), r.threads,
                        r.clients, r.reqPerSec, r.p50Ms, r.p99Ms,
                        r.p999Ms,
                        static_cast<unsigned long long>(r.shed));
            results.push_back(r);
        };
        for (const std::size_t t : {1u, 2u, 4u, 8u, 16u}) {
            show(runNetClosed(session, ConvEngine::WinogradFp32,
                              "net-loop-t" + std::to_string(t), t, 8,
                              2 * t, kNetRequests, 0));
            show(runNetOpen(session, ConvEngine::WinogradFp32,
                            "net-bulk-t" + std::to_string(t), t,
                            kNetRequests));
        }

        // Overload pair: the unloaded row is the latency floor (one
        // closed-loop client, batch 1); the overload row offers 8
        // closed-loop clients against maxPending=2 so admission
        // control sheds most of the load — its percentiles cover the
        // ADMITTED requests, the bounded-latency claim.
        const std::size_t hwNet = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
        show(runNetClosed(session, ConvEngine::WinogradFp32,
                          "net-unloaded", hwNet, 1, 1, 128, 0));
        show(runNetClosed(session, ConvEngine::WinogradFp32,
                          "net-overload", hwNet, 1, 8, 512, 2));
        std::printf("\n");
    }

    // Single-batch large-layer latency: the intra-batch parallelism /
    // blocked-GEMM acceptance metric.
    std::printf("=== Single-batch layer latency (blocked GEMM + "
                "intra-batch parallelism, kernel=%s) ===\n",
                gemm::kernelName());
    {
        const NetworkDesc net = microServeNet(8, 4);
        const ConvLayerDesc *widest = nullptr;
        for (const ConvLayerDesc &d : net.expandedLayers())
            if (d.winogradEligible() &&
                (!widest || d.macs() > widest->macs()))
                widest = &d;
        if (widest)
            runLayerLatency(*widest, "micro8", 8, hw, results);
        ConvLayerDesc wide;
        wide.name = "wide-64";
        wide.cin = 64;
        wide.cout = 64;
        wide.kernel = 3;
        wide.stride = 1;
        wide.height = 16;
        wide.width = 16;
        runLayerLatency(wide, "wide64", 8, hw, results);

        // Quantized wide-64 single-batch latency: NCHW int-winograd
        // vs the NCHWc8 blocked int8 engine, each on its native
        // steady-state input layout — the rows the int8 layout claim
        // is tracked by (wide64-int8-nchw / wide64-int8-blocked).
        {
            const EngineRegistry &registry = EngineRegistry::instance();
            LayerBuild build;
            build.params = ConvParams{3, 1, 1};
            build.variant = WinoVariant::F2;
            TensorD weights({wide.cout, wide.cin, 3, 3});
            Rng wrng(0x18b);
            wrng.fillNormal(weights.storage(), 0.0, 0.1);
            TensorD calT({2, wide.cin, wide.height, wide.width});
            Rng crng(0xca1);
            crng.fillNormal(calT.storage(), 0.0, 1.0);
            std::vector<TensorD> cal{calT};
            build.calibration = &cal;
            TensorD probe({8, wide.cin, wide.height, wide.width});
            Rng prng(0x1e8);
            prng.fillNormal(probe.storage(), 0.0, 1.0);
            TensorD probeBlocked(blockedShape(probe.shape()));
            nchwToBlocked(probe, probeBlocked);
            ScratchArena arena;

            const auto latencyRow = [&](ConvEngine engine,
                                        const char *label,
                                        const TensorD &in) {
                const auto backend = registry.get(engine);
                const auto prep =
                    backend->prepare(wide, weights, build);
                TensorD out(
                    backend->outputShape(*prep, in.shape()));
                backend->run(*prep, in, arena, out); // warmup
                std::vector<double> ms;
                constexpr int kIters = 60;
                ms.reserve(kIters);
                const auto wall0 = Clock::now();
                for (int i = 0; i < kIters; ++i) {
                    const auto t0 = Clock::now();
                    backend->run(*prep, in, arena, out);
                    ms.push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count());
                }
                Result r;
                r.engine = convEngineName(engine);
                r.label = label;
                r.threads = 1;
                r.maxBatch = 8;
                r.clients = 1;
                r.requests = kIters;
                r.wallSec = std::chrono::duration<double>(
                                Clock::now() - wall0)
                                .count();
                r.reqPerSec = kIters / r.wallSec;
                r.p50Ms = percentile(ms, 0.50);
                r.p99Ms = percentile(ms, 0.99);
                r.p999Ms = percentile(ms, 0.999);
                r.avgBatch = 8.0;
                results.push_back(r);
                return r.p50Ms;
            };
            const double pInt = latencyRow(ConvEngine::WinogradInt8,
                                           "wide64-int8-nchw",
                                           probe);
            const double pIntB =
                latencyRow(ConvEngine::WinogradBlockedInt8,
                           "wide64-int8-blocked", probeBlocked);
            std::printf("layer wide-64 int8 p50: nchw %.3f ms, "
                        "nchwc8 %.3f ms (%.2fx)\n",
                        pInt, pIntB, pInt / pIntB);
        }

        // Fused-epilogue and binary16-storage wide-64 rows: the fused
        // row folds bias+ReLU into the blocked untile write; the
        // unfused row runs the same conv then the separate bias/ReLU
        // pass the fusion deletes; the fp16 row is the steady-state
        // half-storage hot path (half activations in and out — the
        // inter-layer regime, conversion seams excluded just like the
        // blocked rows exclude layout conversion). Tracked in the
        // JSON as wide64-fused / wide64-unfused / wide64-fp16.
        {
            const EngineRegistry &registry = EngineRegistry::instance();
            LayerBuild build;
            build.params = ConvParams{3, 1, 1};
            build.variant = WinoVariant::F2;
            TensorD weights({wide.cout, wide.cin, 3, 3});
            Rng wrng(0xf16);
            wrng.fillNormal(weights.storage(), 0.0, 0.1);
            LayerBuild fbuild = build;
            fbuild.epilogue.bias.assign(wide.cout, 0.0);
            Rng brng(0xb1a);
            brng.fillNormal(fbuild.epilogue.bias, 0.0, 0.1);
            fbuild.epilogue.relu = true;

            TensorD probe({8, wide.cin, wide.height, wide.width});
            Rng prng(0xfe1);
            prng.fillNormal(probe.storage(), 0.0, 1.0);
            TensorD probeBlocked(blockedShape(probe.shape()));
            nchwToBlocked(probe, probeBlocked);
            TensorF16 probeHalf(probeBlocked.shape());
            tensorDToF16(probeBlocked, probeHalf);
            ScratchArena arena;

            const auto blocked =
                registry.get(ConvEngine::WinogradBlocked);
            const auto f16 =
                registry.get(ConvEngine::WinogradBlockedF16);
            const auto prepPlain =
                blocked->prepare(wide, weights, build);
            const auto prepFused =
                blocked->prepare(wide, weights, fbuild);
            const auto prepHalf = f16->prepare(wide, weights, build);

            const auto measureRow = [&](ConvEngine engine,
                                        const char *label,
                                        auto &&fn) {
                fn(); // warmup
                std::vector<double> ms;
                constexpr int kIters = 60;
                ms.reserve(kIters);
                const auto wall0 = Clock::now();
                for (int i = 0; i < kIters; ++i) {
                    const auto t0 = Clock::now();
                    fn();
                    ms.push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count());
                }
                Result r;
                r.engine = convEngineName(engine);
                r.label = label;
                r.threads = 1;
                r.maxBatch = 8;
                r.clients = 1;
                r.requests = kIters;
                r.wallSec = std::chrono::duration<double>(
                                Clock::now() - wall0)
                                .count();
                r.reqPerSec = kIters / r.wallSec;
                r.p50Ms = percentile(ms, 0.50);
                r.p99Ms = percentile(ms, 0.99);
                r.p999Ms = percentile(ms, 0.999);
                r.avgBatch = 8.0;
                results.push_back(r);
                return r.p50Ms;
            };

            TensorD outF(blocked->outputShape(*prepFused,
                                              probeBlocked.shape()));
            const double pFused = measureRow(
                ConvEngine::WinogradBlocked, "wide64-fused", [&] {
                    blocked->run(*prepFused, probeBlocked, arena,
                                 outF);
                });
            TensorD outP(blocked->outputShape(*prepPlain,
                                              probeBlocked.shape()));
            const std::vector<double> &bias = fbuild.epilogue.bias;
            const double pSep = measureRow(
                ConvEngine::WinogradBlocked, "wide64-unfused", [&] {
                    blocked->run(*prepPlain, probeBlocked, arena,
                                 outP);
                    double *p = outP.data();
                    const std::size_t hw =
                        outP.shape()[2] * outP.shape()[3];
                    for (std::size_t n = 0; n < outP.shape()[0]; ++n)
                        for (std::size_t b = 0; b < outP.shape()[1];
                             ++b)
                            for (std::size_t i = 0; i < hw; ++i)
                                for (std::size_t l = 0;
                                     l < kLayoutBlock; ++l) {
                                    const double v =
                                        *p +
                                        bias[b * kLayoutBlock + l];
                                    *p++ = v < 0.0 ? 0.0 : v;
                                }
                });
            TensorF16 outH(
                f16->outputShape(*prepHalf, probeHalf.shape()));
            const double pHalf = measureRow(
                ConvEngine::WinogradBlockedF16, "wide64-fp16", [&] {
                    f16->runF16(*prepHalf, probeHalf, arena, outH,
                                RunContext{});
                });
            std::printf("layer wide-64 epilogue p50: fused %.3f ms, "
                        "unfused+pass %.3f ms (%.2fx); fp16 storage "
                        "%.3f ms (%.2fx vs fused fp32, kernel=%s)\n",
                        pFused, pSep, pSep / pFused, pHalf,
                        pFused / pHalf, layout::f16KernelName());
        }

        // What the measured per-layer policy picks for the wide layer
        // (engine + variant + layout race, SessionConfig::autoSelect)
        // — recorded in the JSON as the wide64-autosel row, whose
        // engine field IS the selection.
        NetworkDesc wideNet;
        wideNet.name = "Wide64";
        wideNet.inputRes = wide.height;
        wideNet.layers.push_back(wide);
        SessionConfig scfg;
        scfg.autoSelect = true;
        const auto session =
            std::make_shared<const Session>(wideNet, scfg);
        TensorD probe({8, wide.cin, wide.height, wide.width});
        Rng prng(0x64);
        prng.fillNormal(probe.storage(), 0.0, 1.0);
        ScratchArena arena;
        std::vector<double> ms;
        session->run(probe, arena); // warmup
        constexpr int kIters = 60;
        // Trace the measured iterations and roll the spans up into
        // the JSON's per-stage breakdown (aggregate() stops tracing).
        // The timing loop itself is traced, but a span costs tens of
        // nanoseconds against a multi-hundred-microsecond layer.
        obs::TraceCollector::global().enable();
        beginRowPerf();
        const auto wall0 = Clock::now();
        for (int i = 0; i < kIters; ++i) {
            const auto t0 = Clock::now();
            session->run(probe, arena);
            ms.push_back(std::chrono::duration<double, std::milli>(
                             Clock::now() - t0)
                             .count());
        }
        stages = obs::TraceCollector::global().aggregate();
        // Keep the per-stage counter rollup of this traced run for
        // the JSON's stage_breakdown before endRowPerf resets it.
        stagePerf = obs::PerfStageCollector::global().totals();
        Result r;
        r.engine = convEngineName(session->layerEngine(0));
        r.label = "wide64-autosel";
        r.threads = 1;
        r.maxBatch = 8;
        r.clients = 1;
        r.requests = kIters;
        r.wallSec =
            std::chrono::duration<double>(Clock::now() - wall0).count();
        r.reqPerSec = kIters / r.wallSec;
        r.p50Ms = percentile(ms, 0.50);
        r.p99Ms = percentile(ms, 0.99);
        r.p999Ms = percentile(ms, 0.999);
        r.avgBatch = 8.0;
        endRowPerf(r);
        results.push_back(r);
        std::printf("autoSelect[wide-64] -> %s (%s), p50 %.3f ms "
                    "(batch 8, includes ingress/egress conversion)\n",
                    r.engine, winoName(session->layerVariant(0)),
                    r.p50Ms);

        // Chain-aware layout planning vs the per-layer argmin on a
        // three-deep wide-64 chain: same candidate tables, but the
        // DP charges NCHW↔NCHWc8 seams (and ingress/egress) on the
        // edges, so its plan must serve at least as fast — the
        // wide64-chain-dp row is gated against wide64-argmin by the
        // CI bench-regression check.
        {
            NetworkDesc deep;
            deep.name = "Wide64x3";
            deep.inputRes = wide.height;
            for (int i = 0; i < 3; ++i) {
                ConvLayerDesc l = wide;
                l.name = "wide." + std::to_string(i);
                deep.layers.push_back(l);
            }
            const auto chainRow = [&](const char *label,
                                      bool chainDp) {
                SessionConfig ccfg;
                ccfg.autoSelect = true;
                ccfg.chainDp = chainDp;
                const Session chain(deep, ccfg);
                ScratchArena carena;
                chain.run(probe, carena); // warmup
                std::vector<double> cms;
                beginRowPerf();
                const auto w0 = Clock::now();
                constexpr int kChainIters = 40;
                for (int i = 0; i < kChainIters; ++i) {
                    const auto t0 = Clock::now();
                    chain.run(probe, carena);
                    cms.push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count());
                }
                Result cr;
                cr.engine = convEngineName(chain.layerEngine(0));
                cr.label = label;
                cr.threads = 1;
                cr.maxBatch = 8;
                cr.clients = 1;
                cr.requests = kChainIters;
                cr.wallSec = std::chrono::duration<double>(
                                 Clock::now() - w0)
                                 .count();
                cr.reqPerSec = kChainIters / cr.wallSec;
                cr.p50Ms = percentile(cms, 0.50);
                cr.p99Ms = percentile(cms, 0.99);
                cr.p999Ms = percentile(cms, 0.999);
                cr.avgBatch = 8.0;
                endRowPerf(cr);
                results.push_back(cr);
                std::printf("%s[wide-64x3] -> %s (%s), p50 %.3f ms\n",
                            label, cr.engine,
                            winoName(chain.layerVariant(0)),
                            cr.p50Ms);
            };
            chainRow("wide64-argmin", false);
            chainRow("wide64-chain-dp", true);
        }
    }

    writeJson(results, stages, stagePerf, "BENCH_runtime.json");
    return 0;
}
