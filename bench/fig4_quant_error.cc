/**
 * @file
 * Fig. 4 — relative quantization error of the weights in the
 * spatial domain (a) and the Winograd domain (b) for layer-,
 * channel-, tap-, and channel+tap-wise strategies.
 *
 * Paper reference (ResNet-34 means): spatial 2^-6.01 layer-wise,
 * 2^-6.72 channel-wise (1.7x better); Winograd domain 2^-5.58
 * layer-wise, 2^-5.62 channel-wise, 2^-6.78 tap-wise (2.3x better),
 * channel+tap a further 1.06x.
 */

#include <cmath>
#include <cstdio>

#include "common/rng.hh"
#include "common/stats.hh"
#include "quant/error.hh"

using namespace twq;

namespace
{

/** Trained-layer-like weights: per-channel stddev spread. */
TensorD
syntheticLayer(std::size_t cout, std::size_t cin, std::uint64_t seed)
{
    Rng rng(seed);
    TensorD w({cout, cin, 3, 3});
    for (std::size_t oc = 0; oc < cout; ++oc) {
        const double ch_std = 0.02 + 0.2 * rng.uniform();
        for (std::size_t i = 0; i < cin * 9; ++i)
            w[oc * cin * 9 + i] = rng.normal(0.0, ch_std);
    }
    return w;
}

void
histo(const char *name, const std::vector<double> &errs)
{
    std::vector<double> logs;
    logs.reserve(errs.size());
    for (double e : errs)
        if (e > 0.0)
            logs.push_back(std::log2(e));
    Histogram h(-15.0, 5.0, 20);
    h.add(logs);
    std::printf("--- %s (mean log2 = %.2f) ---\n%s\n", name,
                meanLog2(errs), h.render(40).c_str());
}

} // namespace

int
main()
{
    std::printf("=== Fig. 4: quantization error, spatial vs Winograd "
                "domain ===\n\n");

    // Aggregate several "layers" as the paper aggregates all 3x3
    // layers of ResNet-34.
    std::vector<TensorD> layers;
    for (std::uint64_t s = 1; s <= 6; ++s)
        layers.push_back(syntheticLayer(16, 16, s));

    const auto gather_spatial = [&](QuantGranularity g) {
        std::vector<double> all;
        for (const auto &w : layers) {
            const auto e = spatialQuantErrors(w, g, 8);
            all.insert(all.end(), e.begin(), e.end());
        }
        return all;
    };
    const auto gather_wino = [&](QuantGranularity g) {
        std::vector<double> all;
        for (const auto &w : layers) {
            const auto e =
                winogradQuantErrors(w, WinoVariant::F4, g, 8);
            all.insert(all.end(), e.begin(), e.end());
        }
        return all;
    };

    std::printf("(a) spatial domain\n");
    const auto sp_layer = gather_spatial(QuantGranularity::LayerWise);
    const auto sp_ch = gather_spatial(QuantGranularity::ChannelWise);
    histo("layer-wise", sp_layer);
    histo("channel-wise", sp_ch);
    std::printf("channel-wise improvement: %.2fx "
                "(paper: 1.7x)\n\n",
                std::exp2(meanLog2(sp_layer) - meanLog2(sp_ch)));

    std::printf("(b) Winograd domain (quantize GfG^T, back-transform "
                "via Moore-Penrose pinv)\n");
    const auto wn_layer = gather_wino(QuantGranularity::LayerWise);
    const auto wn_ch = gather_wino(QuantGranularity::ChannelWise);
    const auto wn_tap = gather_wino(QuantGranularity::TapWise);
    const auto wn_both = gather_wino(QuantGranularity::ChannelTapWise);
    histo("layer-wise", wn_layer);
    histo("channel-wise", wn_ch);
    histo("tap-wise", wn_tap);
    histo("channel+tap-wise", wn_both);

    std::printf("summary (mean log2 relative error):\n");
    std::printf("  %-18s %8.2f (paper -5.58)\n", "layer-wise",
                meanLog2(wn_layer));
    std::printf("  %-18s %8.2f (paper -5.62)\n", "channel-wise",
                meanLog2(wn_ch));
    std::printf("  %-18s %8.2f (paper -6.78)\n", "tap-wise",
                meanLog2(wn_tap));
    std::printf("  %-18s %8.2f (paper: 1.06x better than tap)\n",
                "channel+tap", meanLog2(wn_both));
    std::printf("tap-wise improvement over layer-wise: %.2fx "
                "(paper: 2.3x)\n",
                std::exp2(meanLog2(wn_layer) - meanLog2(wn_tap)));
    return 0;
}
