#include "runtime/batcher.hh"

#include "common/logging.hh"

namespace twq
{

Batcher::Batcher(BatchPolicy policy) : policy_(policy)
{
    twq_assert(policy_.maxBatch > 0, "maxBatch must be positive");
}

void
Batcher::add(InferRequest req)
{
    bool notify;
    {
        std::lock_guard<std::mutex> lock(mu_);
        twq_assert(!closed_, "add() on a closed batcher");
        req.enqueued = std::chrono::steady_clock::now();
        pending_.push_back(std::move(req));
        // Waking the dispatcher for every mid-batch add costs a
        // context switch per request; it only needs to hear about the
        // first pending request (it may be idle-waiting) and about a
        // batch filling up. Deadline expiry needs no notify.
        notify = pending_.size() == 1 ||
                 pending_.size() >= policy_.maxBatch;
    }
    if (notify)
        cv_.notify_one();
}

Batch
Batcher::cutLocked()
{
    const std::size_t n = std::min(pending_.size(), policy_.maxBatch);
    Batch batch;
    batch.requests.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        batch.requests.push_back(std::move(pending_.front()));
        pending_.pop_front();
    }
    return batch;
}

std::optional<Batch>
Batcher::next(const std::function<bool()> &flushHint)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (pending_.size() >= policy_.maxBatch || closed_) {
            if (pending_.empty())
                return std::nullopt; // closed and drained
            return cutLocked();
        }
        if (pending_.empty()) {
            cv_.wait(lock);
            continue;
        }
        if (flushHint && flushHint())
            return cutLocked(); // idle capacity: do not stall requests
        // Partial batch: wait out the oldest request's deadline, but
        // wake early if the batch fills, the batcher closes, or a
        // kick() re-arms the flush hint.
        const auto deadline = pending_.front().enqueued + policy_.maxWait;
        const bool expired = !cv_.wait_until(lock, deadline, [&] {
            return closed_ || pending_.size() >= policy_.maxBatch ||
                   (flushHint && flushHint());
        });
        if (expired && !pending_.empty())
            return cutLocked();
    }
}

void
Batcher::kick()
{
    {
        // No pending work means no dispatcher decision to revisit.
        std::lock_guard<std::mutex> lock(mu_);
        if (pending_.empty())
            return;
    }
    cv_.notify_all();
}

void
Batcher::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

} // namespace twq
