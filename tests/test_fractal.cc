/**
 * @file
 * Unit tests for the fractal ⟨N,C1,H,W,C0⟩ data layout.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/fractal.hh"

namespace twq
{
namespace
{

TEST(Fractal, ShapeOfPackedTensor)
{
    TensorF t({2, 64, 8, 8});
    const TensorF packed = packFractal(t);
    ASSERT_EQ(packed.rank(), 5u);
    EXPECT_EQ(packed.dim(0), 2u);
    EXPECT_EQ(packed.dim(1), 2u);  // C1 = 64/32
    EXPECT_EQ(packed.dim(2), 8u);
    EXPECT_EQ(packed.dim(3), 8u);
    EXPECT_EQ(packed.dim(4), 32u);
}

TEST(Fractal, PadsPartialChannelGroup)
{
    TensorF t({1, 40, 4, 4});
    const TensorF packed = packFractal(t);
    EXPECT_EQ(packed.dim(1), 2u);  // ceil(40/32)
    // Padded channels must be zero.
    for (std::size_t h = 0; h < 4; ++h)
        for (std::size_t w = 0; w < 4; ++w)
            for (std::size_t c0 = 8; c0 < 32; ++c0)
                EXPECT_EQ(packed.at(0u, 1u, h, w, c0), 0.0f);
}

TEST(Fractal, RoundTripIdentity)
{
    Rng rng(3);
    TensorF t({2, 48, 5, 7});
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.normal());
    const TensorF back = unpackFractal(packFractal(t), 48);
    EXPECT_EQ(back, t);
}

TEST(Fractal, RoundTripExactMultiple)
{
    Rng rng(4);
    TensorF t({1, 32, 3, 3});
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.normal());
    EXPECT_EQ(unpackFractal(packFractal(t), 32), t);
}

TEST(Fractal, CustomGroupSize)
{
    TensorF t({1, 6, 2, 2});
    const TensorF packed = packFractal(t, 4);
    EXPECT_EQ(packed.dim(1), 2u);
    EXPECT_EQ(packed.dim(4), 4u);
    EXPECT_EQ(unpackFractal(packed, 6), t);
}

TEST(Fractal, ChannelGroupingIsContiguous)
{
    // Element (n=0, c=33, h=0, w=0) lives in group c1=1, slot c0=1.
    TensorF t({1, 64, 1, 1});
    t.at(0u, 33u, 0u, 0u) = 9.0f;
    const TensorF packed = packFractal(t);
    EXPECT_EQ(packed.at(0u, 1u, 0u, 0u, 1u), 9.0f);
}

TEST(Fractal, Int8Pack)
{
    TensorI8 t({1, 3, 2, 2});
    t.at(0u, 2u, 1u, 1u) = -5;
    const TensorI8 packed = packFractal(t);
    EXPECT_EQ(packed.at(0u, 0u, 1u, 1u, 2u), -5);
    EXPECT_EQ(unpackFractal(packed, 3), t);
}

} // namespace
} // namespace twq
