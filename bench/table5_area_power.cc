/**
 * @file
 * Table V — AI-core area/power breakdown and energy-efficiency
 * figures.
 *
 * Area and unit powers are the published post-layout constants (our
 * substitution for RTL synthesis; DESIGN.md); the TOp/s/W figures
 * and per-kernel power deltas are computed from the model, and the
 * shift-add engine sizes come from the DFG explorer.
 */

#include <cstdio>

#include "sim/energy.hh"
#include "sim/operators.hh"
#include "winograd/matrices.hh"
#include "xform/engines.hh"

using namespace twq;

int
main()
{
    std::printf("=== Table V: AI core breakdown at 0.8 V / 500 MHz "
                "===\n\n");
    AcceleratorConfig cfg;

    const double core = cfg.coreAreaMm2();
    std::printf("%-12s %8s %8s\n", "unit", "mm^2", "%core");
    const auto area = [&](const char *n, double a) {
        std::printf("%-12s %8.2f %7.1f%%\n", n, a, 100.0 * a / core);
    };
    area("Cube", cfg.cubeAreaMm2);
    area("Im2col", cfg.im2colAreaMm2);
    area("IN_XFORM", cfg.inXformAreaMm2);
    area("WT_XFORM", cfg.wtXformAreaMm2);
    area("OUT_XFORM", cfg.outXformAreaMm2);
    area("L0A", cfg.l0aAreaMm2);
    area("L0B", cfg.l0bAreaMm2);
    area("L0C", cfg.l0cAreaMm2);
    area("L1", cfg.l1AreaMm2);
    const double wino_area = cfg.inXformAreaMm2 + cfg.wtXformAreaMm2 +
                             cfg.outXformAreaMm2;
    std::printf("\nWinograd extensions: %.2f mm^2 = %.1f%% of the "
                "core (paper: 6.1%%)\n",
                wino_area, 100.0 * wino_area / core);
    std::printf("Winograd engine power vs Cube: %.0f%% "
                "(paper: ~17%%)\n\n",
                100.0 * (cfg.inXformPowerMw + cfg.wtXformPowerMw +
                         cfg.outXformPowerMw) / cfg.cubePowerWinoMw);

    // TOp/s/W: ops counted as 2 per MAC; the Winograd kernel is
    // credited with its spatial-equivalent ops (4x Cube ops).
    const double cube_ops =
        cfg.cubeMacsPerCycle() * 2.0 * cfg.clockGhz; // GOp/s/core
    std::printf("Cube TOp/s/W: im2col %.2f (paper 5.39), F4 "
                "equivalent %.2f (paper 17.04)\n",
                cube_ops / cfg.cubePowerIm2colMw,
                cube_ops * 4.0 / cfg.cubePowerWinoMw);

    // Engine efficiency from the DFG op counts.
    const TransformDfg in_dfg =
        buildTransformDfg(winoBT(WinoVariant::F4).transposed());
    const double in_ops = static_cast<double>(in_dfg.dfg.numAdders());
    const double in_tops = (64.0 / 6.0) * in_ops * cfg.clockGhz;
    std::printf("IN_XFORM TOp/s/W: %.1f (paper 5.3; %0.0f adders per "
                "transform after CSE)\n",
                in_tops / cfg.inXformPowerMw, in_ops);

    // Memory access costs.
    std::printf("\n%-14s %8s %10s %10s\n", "memory", "size kB",
                "rd pJ/B", "wr pJ/B");
    std::printf("%-14s %8zu %10.2f %10.2f\n", "L0A",
                cfg.l0aBytes / 1024, cfg.l0aCost.readPj,
                cfg.l0aCost.writePj);
    std::printf("%-14s %8zu %10.2f %10.2f\n", "L0B",
                cfg.l0bBytes / 1024, cfg.l0bCost.readPj,
                cfg.l0bCost.writePj);
    std::printf("%-14s %8zu %10.2f %10.2f\n", "L0C portA",
                cfg.l0cBytes / 1024, cfg.l0cCostPortA.readPj,
                cfg.l0cCostPortA.writePj);
    std::printf("%-14s %8s %10.2f (im2col) / %.2f (wino)\n",
                "L0C portB", "-", cfg.l0cPortBReadIm2colPj,
                cfg.l0cPortBReadWinoPj);
    std::printf("%-14s %8zu %10.2f %10.2f\n", "L1",
                cfg.l1Bytes / 1024, cfg.l1Cost.readPj,
                cfg.l1Cost.writePj);

    // Per-kernel power on the paper's reference layer (first 3x3
    // layer of ResNet-34): compute-energy / active time.
    ConvWorkload w;
    w.batch = 1;
    w.hOut = w.wOut = 56;
    w.cin = w.cout = 64;
    const OpPerf pi = simulateConv(w, OpKind::Im2col, cfg);
    const OpPerf pw = simulateConv(w, OpKind::WinogradF4, cfg);
    const EnergyBreakdown ei = computeEnergy(pi, cfg);
    const EnergyBreakdown ew = computeEnergy(pw, cfg);
    std::printf("\nReference layer (ResNet-34 first 3x3): energy "
                "%.1f uJ (im2col) vs %.1f uJ (F4)\n",
                ei.total() * 1e-6, ew.total() * 1e-6);
    std::printf("compute datapath energy ratio im2col/F4: %.2fx "
                "(paper: ~3x more efficient with Winograd)\n",
                (ei.cube + ei.im2colEngine) /
                    (ew.cube + ew.inXform + ew.wtXform + ew.outXform));
    return 0;
}
