/**
 * @file
 * NEON double-precision micro-kernel for aarch64, where Advanced SIMD
 * is part of the baseline ISA (no special compile flags needed). Same
 * schedule as the AVX2 kernel with the 4 x 8 accumulator tile held in
 * sixteen 2-wide float64x2 registers; the scalar N edge uses std::fma
 * to match vfmaq's fused rounding.
 */

#include "gemm/kernels.hh"

#if defined(__aarch64__)

#include <arm_neon.h>
#include <cmath>

namespace twq
{
namespace gemm
{

namespace
{

void
neonGemmDImpl(const double *a, const double *b, double *c,
              std::size_t m, std::size_t k, std::size_t n,
              std::size_t ldb, std::size_t ldc, bool transA,
              double *pack)
{
    if (k == 0) {
        for (std::size_t i = 0; i < m; ++i)
            std::fill(c + i * ldc, c + i * ldc + n, 0.0);
        return;
    }
    constexpr std::size_t kVecs = kNr / 2; // float64x2 lanes per row
    for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
        const std::size_t kb = std::min(kKc, k - k0);
        const bool first = k0 == 0;
        for (std::size_t i0 = 0; i0 < m; i0 += kMr) {
            const std::size_t mr = std::min(kMr, m - i0);
            packA(a, m, k, transA, i0, mr, k0, kb, pack);

            std::size_t j0 = 0;
            for (; j0 + kNr <= n; j0 += kNr) {
                float64x2_t acc[kMr][kVecs];
                for (std::size_t r = 0; r < kMr; ++r)
                    for (std::size_t v = 0; v < kVecs; ++v)
                        acc[r][v] =
                            (!first && r < mr)
                                ? vld1q_f64(c + (i0 + r) * ldc + j0 +
                                            2 * v)
                                : vdupq_n_f64(0.0);
                for (std::size_t kk = 0; kk < kb; ++kk) {
                    const double *bk = b + (k0 + kk) * ldb + j0;
                    float64x2_t bv[kVecs];
                    for (std::size_t v = 0; v < kVecs; ++v)
                        bv[v] = vld1q_f64(bk + 2 * v);
                    const double *ap = pack + kk * kMr;
                    for (std::size_t r = 0; r < kMr; ++r) {
                        const float64x2_t ar = vdupq_n_f64(ap[r]);
                        for (std::size_t v = 0; v < kVecs; ++v)
                            acc[r][v] =
                                vfmaq_f64(acc[r][v], ar, bv[v]);
                    }
                }
                for (std::size_t r = 0; r < mr; ++r)
                    for (std::size_t v = 0; v < kVecs; ++v)
                        vst1q_f64(c + (i0 + r) * ldc + j0 + 2 * v,
                                  acc[r][v]);
            }
            for (; j0 < n; ++j0) {
                for (std::size_t r = 0; r < mr; ++r) {
                    double s = first ? 0.0 : c[(i0 + r) * ldc + j0];
                    for (std::size_t kk = 0; kk < kb; ++kk)
                        s = std::fma(pack[kk * kMr + r],
                                     b[(k0 + kk) * ldb + j0], s);
                    c[(i0 + r) * ldc + j0] = s;
                }
            }
        }
    }
}

} // namespace

GemmDFn
neonGemmD()
{
    return &neonGemmDImpl;
}

} // namespace gemm
} // namespace twq

#else // !__aarch64__

namespace twq
{
namespace gemm
{

GemmDFn
neonGemmD()
{
    return nullptr;
}

} // namespace gemm
} // namespace twq

#endif
