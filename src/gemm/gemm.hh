/**
 * @file
 * Unified blocked micro-kernel GEMM subsystem.
 *
 * Every flat [rows, K] x [K, cols] product in the library — the t*t
 * per-tap Winograd products (winograd/tiled.cc), the integer taps of
 * the quantized pipeline (quant/int_winograd.cc), packed im2col
 * (tensor/im2col.cc) and the training forward/backward
 * (nn/wino_conv.cc) — routes through this one core instead of
 * hand-rolling a naive triple loop.
 *
 * Layout and algorithm
 * --------------------
 * Operands are flat row-major with implied leading dimensions
 * (lda = K, ldb = cols, ldc = cols). The core is a BLIS-style blocked
 * kernel:
 *
 *  - K is split into panels of kKc; the A panel [kMr, kKc] of each
 *    row block is packed k-major (pack[kk * kMr + r]) so the micro-
 *    kernel reads A contiguously regardless of lda (and regardless of
 *    whether A is logically transposed — gemmTN packs the transpose
 *    for free). Row-major B is already unit-stride along the N
 *    dimension and is consumed in place.
 *  - The micro-kernel holds an Mr x Nr accumulator tile (kMr = 4 rows
 *    by kNr = 8 columns) in registers and runs the K panel with one
 *    multiply-accumulate per element per k, in ascending k order.
 *
 * Because each output element owns exactly one accumulator and k is
 * consumed strictly ascending (partial sums are carried through C
 * between K panels), the floating-point result is bit-identical to
 * the classic i-k-j loop compiled with the same FP contraction — and
 * independent of M/N blocking, so batched execution stays
 * bit-identical to sequential execution no matter how the P dimension
 * grows.
 *
 * Kernel table
 * ------------
 * The double-precision entry is dispatched at runtime: an AVX2+FMA
 * micro-kernel (kernels_avx2.cc, compiled with -mavx2 -mfma) where
 * the CPU supports it, a NEON micro-kernel on aarch64, and the
 * autovectorization-friendly scalar blocked kernel everywhere else.
 * Within one process the choice is fixed, so results stay
 * deterministic. Integer kernels are exact under any schedule.
 *
 * Pack buffers
 * ------------
 * Every entry point takes an optional caller-provided pack buffer of
 * packSize() elements (the serving runtime draws them from per-worker
 * ScratchArena slots so the hot path performs no allocation); when
 * null, a thread-local buffer of the same size is used, which is
 * allocation-free after first use per thread.
 */

#ifndef TWQ_GEMM_GEMM_HH
#define TWQ_GEMM_GEMM_HH

#include <cstddef>
#include <cstdint>

namespace twq
{
namespace gemm
{

/// Micro-kernel register blocking: rows of A per panel.
inline constexpr std::size_t kMr = 4;
/// Micro-kernel register blocking: columns of B per tile.
inline constexpr std::size_t kNr = 8;
/// K-dimension panel length (bounds the pack buffer).
inline constexpr std::size_t kKc = 512;

/** Elements a caller-provided pack buffer must hold. */
constexpr std::size_t
packSize()
{
    return kMr * kKc;
}

/** Name of the double-precision kernel in use ("avx2", "neon", "scalar"). */
const char *kernelName();

/**
 * Name of the int8 -> int32 widening kernel in use ("avx512-vnni",
 * "avx2", "neon", "scalar").
 */
const char *int8KernelName();

/**
 * C = A B, flat row-major: A [m, k], B [k, n], C [m, n]. C is
 * overwritten. `pack` is an optional packSize() pack buffer.
 */
template <typename T>
void gemm(const T *a, const T *b, T *c, std::size_t m, std::size_t k,
          std::size_t n, T *pack = nullptr);

/**
 * Column-block variant of gemm(): computes the n columns starting at
 * `b`/`c`, which point into operands whose full row strides are
 * ldb/ldc (>= n) — i.e. C[:, j0:j0+n] = A * B[:, j0:j0+n] with
 * b = B + j0 and c = C + j0. Each output element accumulates its own
 * ascending-k sum exactly as in gemm(), so computing a product as any
 * set of column blocks (the P-sharded per-tap GEMMs) is bit-identical
 * to one whole-width call.
 */
template <typename T>
void gemmCols(const T *a, const T *b, T *c, std::size_t m,
              std::size_t k, std::size_t n, std::size_t ldb,
              std::size_t ldc, T *pack = nullptr);

/**
 * C = A^T B with A [k, m] and B [k, n] flat row-major (C [m, n],
 * overwritten). The transpose is absorbed by the A packing step, so
 * this runs the same micro-kernel as gemm(). Used by the training
 * backward (dU = W^T dY).
 */
template <typename T>
void gemmTN(const T *a, const T *b, T *c, std::size_t m, std::size_t k,
            std::size_t n, T *pack = nullptr);

/**
 * C = A B^T with A [m, k] and B [n, k] flat row-major (C [m, n],
 * overwritten) — every output is a dot product of an A row with a B
 * row, so both operands stream contiguously. Used by the training
 * backward (dW = dY U^T).
 */
template <typename T>
void gemmNT(const T *a, const T *b, T *c, std::size_t m, std::size_t k,
            std::size_t n);

/**
 * int8 -> int32 widening-accumulate GEMM: A [m, k] and B [k, n] are
 * signed 8-bit, C [m, n] is int32 and overwritten. Products widen
 * before accumulating in int32; k <= 2^16 is asserted so no
 * intermediate sum can wrap under any of the kernels below, hence no
 * saturation is ever observable and the result is exact.
 *
 * Dispatched at runtime like the double-precision core: an AVX-512
 * VNNI micro-kernel (`vpdpbusd` on u8 x s8 operands, the signed
 * activations offset into unsigned range with a per-row compensation
 * term), an AVX2 pairwise-widening micro-kernel (operands sign-extend
 * to int16 and `vpmaddwd` pair-sums straight into the int32
 * accumulator tile — the `vpmaddubsw` form of that idiom would
 * saturate its int16 pair sums for full-range operands, which would
 * break exactness), a NEON `smull`/`sadalp` counterpart, and the
 * scalar blocked fallback. All kernels accumulate the same integer
 * sums, so the choice never changes results. Backs the im2col-int8
 * baseline engine and the bench smoke gate.
 */
void gemmS8S32(const std::int8_t *a, const std::int8_t *b,
               std::int32_t *c, std::size_t m, std::size_t k,
               std::size_t n, std::int8_t *pack = nullptr);

/**
 * Column-block variant of gemmS8S32() with explicit B/C leading
 * dimensions (ldb/ldc >= n), the seam gemm::colShards P-sharding
 * splits on: computing any set of column blocks is exactly the whole
 * product (integer sums are order-free).
 */
void gemmS8S32Cols(const std::int8_t *a, const std::int8_t *b,
                   std::int32_t *c, std::size_t m, std::size_t k,
                   std::size_t n, std::size_t ldb, std::size_t ldc,
                   std::int8_t *pack = nullptr);

/**
 * True when A's weights provably cannot saturate a `vpmaddubsw`
 * int16 pair sum against full-range u8 activations: every adjacent
 * k-pair of every row satisfies |a[2i]| + |a[2i+1]| <= 128 (the u8 x
 * s8 pair sum is then bounded by 255 * 128 = 32640 < 2^15). 7-bit
 * weights (|a| <= 63) always qualify; full-range int8 may or may not.
 * Scanned once at weight-prepare time — the gate is a property of
 * the static weights alone, valid for any activation operand and any
 * row sub-block.
 */
bool gemmS8PairSafe(const std::int8_t *a, std::size_t m,
                    std::size_t k);

/**
 * Range-gated fast path of gemmS8S32 for weights that pass
 * gemmS8PairSafe (PRECONDITION — not re-checked per call): on AVX2
 * hosts the product runs a `vpmaddubsw` micro-kernel (activations
 * biased into u8 by xor 0x80, quad-interleaved per column, one
 * maddubs+maddwd pair consuming four k values, per-row compensation
 * 128 * sum_k a subtracted at panel stores), which keeps the B
 * operand in bytes through the inner loop. On AVX-512 VNNI hosts and
 * everywhere else it falls back to gemmS8S32's kernel, which is
 * already optimal or exact there. All paths compute the identical
 * integer sums, so results are bit-identical to gemmS8S32.
 */
void gemmS8S32Pair(const std::int8_t *a, const std::int8_t *b,
                   std::int32_t *c, std::size_t m, std::size_t k,
                   std::size_t n, std::int8_t *pack = nullptr);

/**
 * Name of the kernel gemmS8S32Pair dispatches to ("avx2-maddubs"
 * when the gated kernel is live, otherwise int8KernelName()).
 */
const char *int8PairKernelName();

/**
 * The generic baseline-ISA blocked widening kernel (what gemmS8S32
 * ran before the dispatched micro-kernels existed). Kept callable as
 * the oracle for tests and the baseline of the bench smoke gate.
 */
void gemmS8S32Generic(const std::int8_t *a, const std::int8_t *b,
                      std::int32_t *c, std::size_t m, std::size_t k,
                      std::size_t n, std::size_t ldb, std::size_t ldc,
                      std::int8_t *pack = nullptr);

/**
 * The naive i-k-j triple loop (the former gemmFlat), kept inline as
 * the oracle for tests, the bench gate's baseline, and for tiny
 * operands (t x t tile transforms) where blocking overhead dominates.
 * Accumulation runs in ascending k per element, like gemm().
 */
template <typename T>
inline void
referenceGemm(const T *a, const T *b, T *c, std::size_t m,
              std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        T *ci = c + i * n;
        for (std::size_t j = 0; j < n; ++j)
            ci[j] = T{};
        for (std::size_t kk = 0; kk < k; ++kk) {
            const T aik = a[i * k + kk];
            const T *bk = b + kk * n;
            for (std::size_t j = 0; j < n; ++j)
                ci[j] += aik * bk[j];
        }
    }
}

extern template void gemm(const float *, const float *, float *,
                          std::size_t, std::size_t, std::size_t,
                          float *);
extern template void gemm(const double *, const double *, double *,
                          std::size_t, std::size_t, std::size_t,
                          double *);
extern template void gemm(const std::int64_t *, const std::int64_t *,
                          std::int64_t *, std::size_t, std::size_t,
                          std::size_t, std::int64_t *);
extern template void gemmCols(const float *, const float *, float *,
                              std::size_t, std::size_t, std::size_t,
                              std::size_t, std::size_t, float *);
extern template void gemmCols(const double *, const double *, double *,
                              std::size_t, std::size_t, std::size_t,
                              std::size_t, std::size_t, double *);
extern template void gemmCols(const std::int64_t *,
                              const std::int64_t *, std::int64_t *,
                              std::size_t, std::size_t, std::size_t,
                              std::size_t, std::size_t, std::int64_t *);
extern template void gemmTN(const float *, const float *, float *,
                            std::size_t, std::size_t, std::size_t,
                            float *);
extern template void gemmTN(const double *, const double *, double *,
                            std::size_t, std::size_t, std::size_t,
                            double *);
extern template void gemmTN(const std::int64_t *, const std::int64_t *,
                            std::int64_t *, std::size_t, std::size_t,
                            std::size_t, std::int64_t *);
extern template void gemmNT(const float *, const float *, float *,
                            std::size_t, std::size_t, std::size_t);
extern template void gemmNT(const double *, const double *, double *,
                            std::size_t, std::size_t, std::size_t);

} // namespace gemm
} // namespace twq

#endif // TWQ_GEMM_GEMM_HH
