/**
 * @file
 * Table II — ablation study of the tap-wise quantization training
 * flow.
 *
 * The paper trains ResNet-34 on ImageNet; we train a structurally
 * similar compact network on the synthetic dataset (DESIGN.md
 * documents the substitution) and reproduce the same configuration
 * grid. What must hold is the *shape*: naive single-scale F4-int8
 * collapses, tap-wise quantization recovers most of the gap, the
 * power-of-two restriction costs a little, KD/log2 training recovers
 * it, and int8/10 closes the gap to the FP32 baseline.
 */

#include <cstdio>
#include <memory>

#include "data/synthetic.hh"
#include "models/ablation_net.hh"
#include "nn/trainer.hh"

using namespace twq;

namespace
{

struct Row
{
    const char *alg;
    const char *flags;
    const char *bits;
    ConvKind kind;
    bool quantize;
    bool tapWise;
    bool pow2;
    bool learn;
    bool kd;
    int winoBits;
    int im2colBits;
};

} // namespace

int
main()
{
    std::printf("=== Table II: ablation (compact analogue of "
                "ResNet-34/ImageNet) ===\n\n");

    // A deliberately hard instance (10 classes, heavy noise, narrow
    // network) so the quantization configurations separate; with an
    // easy task every row saturates and the ablation is invisible.
    SyntheticConfig dcfg;
    dcfg.classes = 10;
    dcfg.imageSize = 12;
    dcfg.noise = 0.6;
    dcfg.seed = 21;
    const DataSplits data = makeSplits(400, 100, 200, dcfg);

    const auto train = [&](const Row &r,
                           Layer *teacher) -> double {
        AblationConfig cfg;
        cfg.kind = r.kind;
        cfg.channels = 6;
        cfg.classes = 10;
        cfg.im2colQuantBits = r.im2colBits;
        cfg.wino.quantize = r.quantize;
        cfg.wino.tapWise = r.tapWise;
        cfg.wino.pow2 = r.pow2;
        cfg.wino.learnScales = r.learn;
        cfg.wino.winogradBits = r.winoBits;
        auto net = makeTinyConvNet(cfg);
        TrainConfig tcfg;
        tcfg.epochs = 5;
        tcfg.kdAlpha = r.kd ? 0.5 : 1.0;
        Trainer tr(*net, tcfg);
        if (r.kd && teacher)
            tr.setTeacher(teacher);
        tr.fit(data.train, data.val);
        return tr.evaluate(data.test);
    };

    // FP32 teacher/baseline.
    AblationConfig fp_cfg;
    fp_cfg.kind = ConvKind::Im2col;
    fp_cfg.channels = 6;
    fp_cfg.classes = 10;
    auto teacher = makeTinyConvNet(fp_cfg);
    {
        TrainConfig tcfg;
        tcfg.epochs = 5;
        Trainer tr(*teacher, tcfg);
        tr.fit(data.train, data.val);
    }

    const Row rows[] = {
        // alg    flags                 bits   kind, q, tap, p2, lg, kd, wb, i8
        {"im2col", "FP32", "FP32", ConvKind::Im2col, false, false,
         false, false, false, 8, 0},
        {"im2col", "", "8", ConvKind::Im2col, false, false, false,
         false, false, 8, 8},
        {"F2", "WA", "8", ConvKind::WinogradF2, true, false, false,
         false, false, 8, 0},
        {"F2", "WA", "8/10", ConvKind::WinogradF2, true, false, false,
         false, false, 10, 0},
        {"F4", "WA", "8", ConvKind::WinogradF4, true, false, false,
         false, false, 8, 0},
        {"F4", "WA", "8/10", ConvKind::WinogradF4, true, false, false,
         false, false, 10, 0},
        {"F4", "WA+tap", "8", ConvKind::WinogradF4, true, true, false,
         false, false, 8, 0},
        {"F4", "WA+tap", "8/10", ConvKind::WinogradF4, true, true,
         false, false, false, 10, 0},
        {"F4", "WA+tap+KD", "8", ConvKind::WinogradF4, true, true,
         false, false, true, 8, 0},
        {"F4", "WA+tap+2x", "8", ConvKind::WinogradF4, true, true,
         true, false, false, 8, 0},
        {"F4", "WA+tap+2x", "8/10", ConvKind::WinogradF4, true, true,
         true, false, false, 10, 0},
        {"F4", "WA+tap+2x+log2", "8", ConvKind::WinogradF4, true, true,
         true, true, false, 8, 0},
        {"F4", "WA+tap+2x+log2", "8/10", ConvKind::WinogradF4, true,
         true, true, true, false, 10, 0},
        {"F4", "WA+tap+2x+KD", "8", ConvKind::WinogradF4, true, true,
         true, false, true, 8, 0},
        {"F4", "WA+tap+2x+log2+KD", "8", ConvKind::WinogradF4, true,
         true, true, true, true, 8, 0},
        {"F4", "WA+tap+2x+log2+KD", "8/10", ConvKind::WinogradF4,
         true, true, true, true, true, 10, 0},
    };

    double baseline = 0.0;
    std::printf("%-8s %-20s %-6s %8s %8s\n", "Alg.", "flags", "intn",
                "Top-1", "delta");
    for (const Row &r : rows) {
        const double acc = train(r, teacher.get());
        if (baseline == 0.0)
            baseline = acc;
        std::printf("%-8s %-20s %-6s %7.1f%% %+7.1f%%\n", r.alg,
                    r.flags, r.bits, acc * 100.0,
                    (acc - baseline) * 100.0);
    }

    std::printf("\npaper reference (ResNet-34/ImageNet Top-1 deltas): "
                "im2col-int8 0.0, F2-WA-8 -1.2,\nF4-WA-8 -13.6, "
                "F4-tap-8 -1.2, F4-tap-8/10 -0.6, F4-tap-KD-8 -0.1,\n"
                "F4-tap-2x-8 -1.7, F4-tap-2x-log2-KD-8 -1.5, "
                "F4-tap-2x-log2-KD-8/10 -0.3\n");
    return 0;
}
