/**
 * @file
 * Small bit-manipulation helpers shared by the quantizer and the
 * hardware models.
 */

#ifndef TWQ_COMMON_BITS_HH
#define TWQ_COMMON_BITS_HH

#include <cstdint>

namespace twq
{

/** True when v is a positive power of two. */
constexpr bool
isPowerOfTwo(std::int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** ceil(log2(v)) for v >= 1. */
constexpr int
ceilLog2(std::int64_t v)
{
    int bits = 0;
    std::int64_t x = 1;
    while (x < v) {
        x <<= 1;
        ++bits;
    }
    return bits;
}

/** floor(log2(v)) for v >= 1. */
constexpr int
floorLog2(std::int64_t v)
{
    int bits = -1;
    while (v > 0) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

/**
 * Number of bits of a signed integer type able to represent values in
 * [-(2^(n-1)), 2^(n-1)-1] that covers v.
 */
constexpr int
signedBitsFor(std::int64_t v)
{
    const std::int64_t mag = v < 0 ? -(v + 1) : v;
    int n = 1;
    std::int64_t lim = 0; // 2^(n-1) - 1 with n = 1
    while (mag > lim) {
        ++n;
        lim = (std::int64_t{1} << (n - 1)) - 1;
    }
    return n;
}

/** Arithmetic shift right with round-half-away-from-zero semantics. */
constexpr std::int64_t
shiftRightRound(std::int64_t v, int shift)
{
    if (shift <= 0)
        return v << -shift;
    const std::int64_t bias = std::int64_t{1} << (shift - 1);
    if (v >= 0)
        return (v + bias) >> shift;
    return -((-v + bias) >> shift);
}

/** Clamp v to the signed n-bit range [-2^(n-1), 2^(n-1)-1]. */
constexpr std::int64_t
clampSigned(std::int64_t v, int n)
{
    const std::int64_t lo = -(std::int64_t{1} << (n - 1));
    const std::int64_t hi = (std::int64_t{1} << (n - 1)) - 1;
    return v < lo ? lo : (v > hi ? hi : v);
}

} // namespace twq

#endif // TWQ_COMMON_BITS_HH
