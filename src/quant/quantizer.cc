#include "quant/quantizer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace twq
{

double
scaleForMax(double xmax, int bits)
{
    twq_assert(bits >= 2 && bits <= 32, "unsupported bitwidth ", bits);
    if (xmax <= 0.0)
        return 1.0; // degenerate tensor; any scale works for all-zeros
    return xmax / static_cast<double>(quantMax(bits));
}

std::int64_t
quantize(double x, double scale, int bits)
{
    twq_assert(scale > 0.0, "non-positive quantization scale");
    const double q = std::nearbyint(x / scale);
    const double lo = static_cast<double>(quantMin(bits));
    const double hi = static_cast<double>(quantMax(bits));
    return static_cast<std::int64_t>(std::clamp(q, lo, hi));
}

double
dequantize(std::int64_t q, double scale)
{
    return static_cast<double>(q) * scale;
}

double
fakeQuantize(double x, double scale, int bits)
{
    return dequantize(quantize(x, scale, bits), scale);
}

double
pow2Ceil(double s)
{
    twq_assert(s > 0.0, "pow2Ceil of non-positive scale");
    return std::exp2(std::ceil(std::log2(s)));
}

double
pow2Nearest(double s)
{
    twq_assert(s > 0.0, "pow2Nearest of non-positive scale");
    return std::exp2(std::nearbyint(std::log2(s)));
}

int
log2Exact(double pow2_scale)
{
    const double l = std::log2(pow2_scale);
    const double r = std::nearbyint(l);
    twq_assert(std::abs(l - r) < 1e-9, "scale ", pow2_scale,
               " is not a power of two");
    return static_cast<int>(r);
}

void
MaxCalibrator::observe(double batch_absmax)
{
    batch_absmax = std::abs(batch_absmax);
    if (!seeded_) {
        ema_ = batch_absmax;
        seeded_ = true;
    } else {
        ema_ = momentum_ * ema_ + (1.0 - momentum_) * batch_absmax;
    }
}

void
MaxCalibrator::observeAll(const std::vector<double> &values)
{
    double m = 0.0;
    for (double v : values)
        m = std::max(m, std::abs(v));
    observe(m);
}

double
MaxCalibrator::scale(int bits) const
{
    return scaleForMax(max(), bits);
}

} // namespace twq
