#include "layout/kernels_f16.hh"

#include <algorithm>

namespace twq
{
namespace layout
{

namespace
{

F16Kernels
softF16Kernels()
{
    F16Kernels k;
    k.widen = &softWiden<>;
    k.narrow = &softNarrow<>;
    k.tapGemm = &softTapGemmF16<>;
    k.kron = &softKronF<>;
    k.name = "soft";
    return k;
}

/**
 * Resolution: F16C hardware first, then NEON fp16, then the software
 * half. A partially-populated ISA table (e.g. NEON provides only the
 * conversion pair) keeps the soft fallback for its missing entries,
 * so every field is callable after resolution.
 */
F16Kernels
resolve()
{
    F16Kernels k = softF16Kernels();
    for (const F16Kernels &isa :
         {avx2F16Kernels(), neonF16Kernels()}) {
        if (!isa.widen && !isa.narrow && !isa.tapGemm && !isa.kron)
            continue;
        if (isa.widen)
            k.widen = isa.widen;
        if (isa.narrow)
            k.narrow = isa.narrow;
        if (isa.tapGemm)
            k.tapGemm = isa.tapGemm;
        if (isa.kron)
            k.kron = isa.kron;
        k.name = isa.name;
        break;
    }
    return k;
}

} // namespace

const F16Kernels &
f16Kernels()
{
    static const F16Kernels k = resolve();
    return k;
}

const char *
f16KernelName()
{
    return f16Kernels().name;
}

} // namespace layout

void
tensorDToF16(const TensorD &in, TensorF16 &out)
{
    if (out.shape() != in.shape())
        out = TensorF16(in.shape());
    // Convert through a small float staging block so the vectorized
    // narrow kernel does the rounding work.
    constexpr std::size_t kChunk = 4096;
    float buf[kChunk];
    const std::size_t n = in.numel();
    for (std::size_t i0 = 0; i0 < n; i0 += kChunk) {
        const std::size_t c = std::min(kChunk, n - i0);
        for (std::size_t i = 0; i < c; ++i)
            buf[i] = static_cast<float>(in[i0 + i]);
        layout::f16Kernels().narrow(buf, out.data() + i0, c);
    }
}

void
tensorF16ToD(const TensorF16 &in, TensorD &out)
{
    if (out.shape() != in.shape())
        out = TensorD(in.shape());
    constexpr std::size_t kChunk = 4096;
    float buf[kChunk];
    const std::size_t n = in.numel();
    for (std::size_t i0 = 0; i0 < n; i0 += kChunk) {
        const std::size_t c = std::min(kChunk, n - i0);
        layout::f16Kernels().widen(in.data() + i0, buf, c);
        for (std::size_t i = 0; i < c; ++i)
            out[i0 + i] = static_cast<double>(buf[i]);
    }
}

} // namespace twq
