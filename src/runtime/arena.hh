/**
 * @file
 * Per-worker scratch storage for the serving runtime.
 *
 * Each worker thread owns one ScratchArena; tensors handed out by
 * `tensor()` are keyed by name and reused across batches, so a steady
 * stream of same-shaped batches performs no allocations in the
 * serving loop. Arenas are deliberately NOT thread-safe — sharing one
 * between workers defeats their purpose.
 */

#ifndef TWQ_RUNTIME_ARENA_HH
#define TWQ_RUNTIME_ARENA_HH

#include <string>
#include <unordered_map>

#include "tensor/tensor.hh"

namespace twq
{

class ScratchArena
{
  public:
    /**
     * A reusable tensor slot. The first request for a key allocates;
     * later requests with the same shape return the previous storage
     * (contents are stale — callers overwrite). A shape change
     * reallocates the slot.
     */
    TensorD &
    tensor(const std::string &key, const Shape &shape)
    {
        TensorD &slot = slots_[key];
        if (slot.shape() != shape)
            slot = TensorD(shape);
        return slot;
    }

    std::size_t slotCount() const { return slots_.size(); }

  private:
    std::unordered_map<std::string, TensorD> slots_;
};

} // namespace twq

#endif // TWQ_RUNTIME_ARENA_HH
