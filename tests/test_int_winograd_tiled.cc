/**
 * @file
 * Bit-identity of the tiled (scatter–GEMM–gather) integer Winograd
 * pipeline against the tile-at-a-time reference oracle, across
 * variants, bit widths, quantization granularities, and randomized
 * shapes. Integer summation is order-independent, so tiled and
 * reference must agree exactly — including the dequantized FP output,
 * whose per-element operation sequence is preserved.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "common/rng.hh"
#include "quant/int_winograd.hh"
#include "tensor/im2col.hh"

namespace twq
{
namespace
{

TensorD
randomTensor(const Shape &shape, std::uint64_t seed)
{
    TensorD t(shape);
    Rng rng(seed);
    rng.fillNormal(t.storage(), 0.0, 1.0);
    return t;
}

struct Case
{
    WinoVariant variant;
    int winogradBits;
    QuantGranularity granularity;
    bool pow2;
    Shape input;
};

class TiledIntWinograd : public ::testing::TestWithParam<Case>
{};

TEST_P(TiledIntWinograd, ForwardBitIdenticalToReference)
{
    const Case &c = GetParam();
    IntWinogradConfig cfg;
    cfg.variant = c.variant;
    cfg.winogradBits = c.winogradBits;
    cfg.granularity = c.granularity;
    cfg.pow2Scales = c.pow2;
    const std::size_t cin = c.input[1];
    const TensorD w = randomTensor({5, cin, 3, 3}, 1000);
    const std::vector<TensorD> cal{randomTensor(c.input, 1001)};
    const IntWinogradConv conv(w, cal, cfg);

    const TensorD x = randomTensor(c.input, 1002);
    const TensorD tiled = conv.forward(x);
    const TensorD ref = conv.forwardReference(x);
    ASSERT_EQ(tiled.shape(), ref.shape());
    for (std::size_t i = 0; i < tiled.numel(); ++i)
        ASSERT_EQ(tiled[i], ref[i])
            << "element " << i << " of " << winoName(c.variant) << "/"
            << granularityName(c.granularity) << "/"
            << c.winogradBits << "b";
}

TEST_P(TiledIntWinograd, ForwardInt8BitIdenticalToReference)
{
    const Case &c = GetParam();
    if (!c.pow2)
        GTEST_SKIP() << "forwardInt8 requires power-of-two scales";
    IntWinogradConfig cfg;
    cfg.variant = c.variant;
    cfg.winogradBits = c.winogradBits;
    cfg.granularity = c.granularity;
    cfg.pow2Scales = true;
    const std::size_t cin = c.input[1];
    const TensorD w = randomTensor({4, cin, 3, 3}, 2000);
    const std::vector<TensorD> cal{randomTensor(c.input, 2001)};
    const IntWinogradConv conv(w, cal, cfg);

    const TensorD x = randomTensor(c.input, 2002);
    for (const bool relu : {false, true}) {
        double s_tiled = 0.0, s_ref = 0.0;
        const TensorI8 tiled = conv.forwardInt8(x, &s_tiled, relu);
        const TensorI8 ref =
            conv.forwardInt8Reference(x, &s_ref, relu);
        EXPECT_EQ(s_tiled, s_ref);
        ASSERT_EQ(tiled.shape(), ref.shape());
        for (std::size_t i = 0; i < tiled.numel(); ++i)
            ASSERT_EQ(tiled[i], ref[i]) << "relu=" << relu;
    }
}

TEST_P(TiledIntWinograd, ForwardIntoReusedBuffersIsStable)
{
    // Reused scratch buffers (the serving configuration) must give
    // the same result on every call, including after a batch-size
    // change re-shapes them.
    const Case &c = GetParam();
    IntWinogradConfig cfg;
    cfg.variant = c.variant;
    cfg.winogradBits = c.winogradBits;
    cfg.granularity = c.granularity;
    cfg.pow2Scales = c.pow2;
    const std::size_t cin = c.input[1];
    const TensorD w = randomTensor({3, cin, 3, 3}, 3000);
    const std::vector<TensorD> cal{randomTensor(c.input, 3001)};
    const IntWinogradConv conv(w, cal, cfg);

    TensorI64 xq, V, U, M;
    TensorD Md, Y;
    Shape big = c.input;
    big[0] *= 2;
    const TensorD x1 = randomTensor(big, 3002);
    const TensorD x2 = randomTensor(c.input, 3003);
    for (const TensorD *x : {&x1, &x2, &x1}) {
        const ConvParams p{3, 1, cfg.pad};
        TensorD out({x->dim(0), conv.cout(), p.outSize(x->dim(2)),
                     p.outSize(x->dim(3))});
        conv.forwardInto(*x, xq, V, U, M, Md, Y, out);
        const TensorD ref = conv.forwardReference(*x);
        ASSERT_EQ(out.shape(), ref.shape());
        for (std::size_t i = 0; i < out.numel(); ++i)
            ASSERT_EQ(out[i], ref[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TiledIntWinograd,
    ::testing::Values(
        // The paper's headline configuration: F4 tap-wise, 8-bit.
        Case{WinoVariant::F4, 8, QuantGranularity::TapWise, true,
             {2, 3, 8, 8}},
        // 10-bit Winograd domain (the accuracy-recovery setting).
        Case{WinoVariant::F4, 10, QuantGranularity::TapWise, true,
             {1, 4, 9, 7}},
        // Layer-wise granularity (the "traditional" baseline).
        Case{WinoVariant::F4, 8, QuantGranularity::LayerWise, true,
             {1, 2, 6, 6}},
        Case{WinoVariant::F2, 8, QuantGranularity::LayerWise, true,
             {2, 2, 5, 9}},
        // F2 tap-wise and channel granularities.
        Case{WinoVariant::F2, 8, QuantGranularity::TapWise, true,
             {1, 3, 8, 8}},
        Case{WinoVariant::F2, 10, QuantGranularity::ChannelWise, true,
             {1, 3, 7, 7}},
        Case{WinoVariant::F4, 8, QuantGranularity::ChannelTapWise,
             true, {1, 2, 10, 6}},
        // Non-power-of-two scales exercise the round(x/s) rescale.
        Case{WinoVariant::F4, 8, QuantGranularity::TapWise, false,
             {1, 3, 8, 8}},
        Case{WinoVariant::F2, 10, QuantGranularity::TapWise, false,
             {2, 2, 7, 5}}),
    [](const ::testing::TestParamInfo<Case> &info) {
        const Case &c = info.param;
        std::string name = winoName(c.variant);
        name += "_";
        name += granularityName(c.granularity);
        name += "_";
        name += std::to_string(c.winogradBits) + "b";
        name += c.pow2 ? "_pow2" : "_free";
        for (char &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace
} // namespace twq
