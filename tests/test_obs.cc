/**
 * @file
 * Observability subsystem tests: histogram quantiles against an exact
 * sorted-sample oracle (bucket edges included), multi-threaded
 * counter/histogram merge determinism, trace JSON schema validity
 * (parses, spans nest, lanes match workers), zero allocations on the
 * disabled hot path, agreement between the server's histogram view
 * and client-side measurements, the shared-calibration pass counter,
 * and the thread-safe rate-limited logging sink.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "models/zoo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "quant/calibration.hh"
#include "quant/int_winograd.hh"
#include "runtime/server.hh"

// ------------------------------------------------- allocation probe
// Counts every global operator new in the test binary so the
// disabled-path test can assert the obs hot path allocates nothing.
namespace
{
std::atomic<std::size_t> gAllocCount{0};
} // namespace

void *
operator new(std::size_t n)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace twq
{
namespace
{

// ------------------------------------------------------- histograms

TEST(ObsHistogram, BinIndexEdges)
{
    using HS = obs::HistogramSnapshot;
    EXPECT_EQ(HS::binIndex(0), 0u);
    EXPECT_EQ(HS::binIndex(1), 0u);
    EXPECT_EQ(HS::binIndex(2), 1u);
    EXPECT_EQ(HS::binIndex(3), 1u);
    EXPECT_EQ(HS::binIndex(4), 2u);
    for (std::size_t b = 1; b < 63; ++b) {
        const std::uint64_t lo = std::uint64_t{1} << b;
        EXPECT_EQ(HS::binIndex(lo - 1), b - 1);
        EXPECT_EQ(HS::binIndex(lo), b);
        EXPECT_EQ(HS::binIndex(lo + 1), b);
        EXPECT_EQ(HS::binLower(b), lo);
        EXPECT_EQ(HS::binUpper(b), lo << 1);
    }
    EXPECT_EQ(HS::binIndex(~std::uint64_t{0}), 63u);
    EXPECT_EQ(HS::binUpper(63), ~std::uint64_t{0});
}

/**
 * The histogram quantile must land inside the bucket that holds the
 * exact nearest-rank sample — i.e. within one bucket width (a factor
 * of 2) of the true value, for any quantile and any sample set.
 */
void
checkQuantilesAgainstOracle(const std::vector<std::uint64_t> &samples)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    obs::Histogram h;
    for (std::uint64_t v : samples)
        h.record(v);
    const obs::HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.count, samples.size());

    std::vector<std::uint64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        // Nearest rank, the same convention as twq::percentile.
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(sorted.size())));
        rank = std::clamp<std::size_t>(rank, 1, sorted.size());
        const std::uint64_t exact = sorted[rank - 1];
        const std::size_t bin = obs::HistogramSnapshot::binIndex(exact);
        const double got = s.quantile(q);
        EXPECT_GE(got, static_cast<double>(
                           obs::HistogramSnapshot::binLower(bin)))
            << "q=" << q << " exact=" << exact;
        EXPECT_LE(got, static_cast<double>(
                           obs::HistogramSnapshot::binUpper(bin)))
            << "q=" << q << " exact=" << exact;
    }
}

TEST(ObsHistogram, QuantileVsOracleUniform)
{
    std::vector<std::uint64_t> samples;
    std::uint64_t x = 0x2545f4914f6cdd1dull;
    for (int i = 0; i < 5000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        samples.push_back(x % 1000000);
    }
    checkQuantilesAgainstOracle(samples);
}

TEST(ObsHistogram, QuantileVsOracleBucketEdges)
{
    // Exact powers of two sit on bucket lower edges; +-1 neighbors
    // stress the off-by-one directions of the bin walk.
    std::vector<std::uint64_t> samples{0, 1, 1, 2, 3, 4, 7, 8, 9};
    for (std::size_t b = 4; b < 20; ++b) {
        const std::uint64_t lo = std::uint64_t{1} << b;
        samples.push_back(lo - 1);
        samples.push_back(lo);
        samples.push_back(lo + 1);
    }
    checkQuantilesAgainstOracle(samples);
}

TEST(ObsHistogram, QuantileVsOracleSkewed)
{
    // A latency-shaped distribution: a tight body and a long tail.
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 900; ++i)
        samples.push_back(50000 + static_cast<std::uint64_t>(i) * 37);
    for (int i = 0; i < 100; ++i)
        samples.push_back(2000000 +
                          static_cast<std::uint64_t>(i) * 100000);
    checkQuantilesAgainstOracle(samples);
}

TEST(ObsHistogram, MergeEqualsCombinedRecording)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    obs::Histogram a, b, both;
    for (std::uint64_t v = 1; v < 4000; v += 3) {
        a.record(v);
        both.record(v);
    }
    for (std::uint64_t v = 10; v < 90000; v += 7) {
        b.record(v * v % 70001);
        both.record(v * v % 70001);
    }
    obs::HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    const obs::HistogramSnapshot expect = both.snapshot();
    EXPECT_EQ(merged.bins, expect.bins);
    EXPECT_EQ(merged.count, expect.count);
    EXPECT_EQ(merged.sum, expect.sum);
}

/**
 * Concurrent recording is exactly additive: a multi-threaded fill
 * must produce bit-identical bins/count/sum to the same values
 * recorded sequentially, and concurrent counter increments must not
 * lose updates.
 */
TEST(ObsHistogram, MultiThreadMergeDeterminism)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    obs::Histogram shared, sequential;
    obs::Counter counter;

    const auto valueOf = [](int t, int i) {
        return static_cast<std::uint64_t>(t * 1000003 + i * 17 + 1);
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                shared.record(valueOf(t, i));
                counter.inc();
            }
        });
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i)
            sequential.record(valueOf(t, i));

    const obs::HistogramSnapshot got = shared.snapshot();
    const obs::HistogramSnapshot expect = sequential.snapshot();
    EXPECT_EQ(got.bins, expect.bins);
    EXPECT_EQ(got.count, expect.count);
    EXPECT_EQ(got.sum, expect.sum);
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

/**
 * Sharded recording (one histogram per thread, merged afterwards —
 * the server's per-worker pattern) must preserve the quantile
 * guarantee: merged quantiles stay within one bucket width of the
 * exact nearest-rank oracle over ALL threads' samples.
 */
TEST(ObsHistogram, ConcurrentShardMergeQuantilesWithinOneBucket)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    constexpr int kThreads = 8;
    constexpr int kPerThread = 4000;
    obs::Histogram shards[kThreads];

    // Latency-shaped per-thread streams: tight body, long tail, with
    // thread-dependent skew so shards genuinely differ.
    const auto valueOf = [](int t, int i) -> std::uint64_t {
        const std::uint64_t base = 40000 + t * 11000 + i * 13;
        return (i % 97 == 0) ? base * 50 : base;
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                shards[t].record(valueOf(t, i));
        });
    for (auto &th : threads)
        th.join();

    obs::HistogramSnapshot merged = shards[0].snapshot();
    for (int t = 1; t < kThreads; ++t)
        merged.merge(shards[t].snapshot());
    std::vector<std::uint64_t> sorted;
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i)
            sorted.push_back(valueOf(t, i));
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(merged.count, sorted.size());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(sorted.size())));
        rank = std::clamp<std::size_t>(rank, 1, sorted.size());
        const std::uint64_t exact = sorted[rank - 1];
        const std::size_t bin =
            obs::HistogramSnapshot::binIndex(exact);
        const double got = merged.quantile(q);
        EXPECT_GE(got, static_cast<double>(
                           obs::HistogramSnapshot::binLower(bin)))
            << "q=" << q;
        EXPECT_LE(got, static_cast<double>(
                           obs::HistogramSnapshot::binUpper(bin)))
            << "q=" << q;
    }
}

// --------------------------------------------------------- registry

TEST(ObsRegistry, StableReferencesAndSnapshot)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    obs::Registry reg;
    obs::Counter &c1 = reg.counter("reg.test_counter");
    obs::Counter &c2 = reg.counter("reg.test_counter");
    EXPECT_EQ(&c1, &c2); // same name, same metric
    c1.inc(41);
    c2.inc();
    reg.gauge("reg.test_gauge").set(-7);
    reg.histogram("reg.test_hist").record(1000);

    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("reg.test_counter"), 42u);
    EXPECT_EQ(snap.gauges.at("reg.test_gauge"), -7);
    EXPECT_EQ(snap.histograms.at("reg.test_hist").count, 1u);

    const std::string text = snap.prometheusText();
    EXPECT_NE(text.find("twq_reg_test_counter 42"), std::string::npos);
    EXPECT_NE(text.find("twq_reg_test_gauge -7"), std::string::npos);
    EXPECT_NE(text.find("twq_reg_test_hist_count 1"),
              std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

/**
 * Registry name lookup is on the first-touch path of every metric
 * site, so lookups (including ones that CREATE metrics) must be safe
 * against concurrent recording and snapshotting. This is the test
 * CI's TSan leg aims at: any lock misuse in Registry::counter /
 * histogram / snapshot shows up as a reported race here.
 */
TEST(ObsRegistry, LookupDuringConcurrentRecordingIsRaceFree)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    obs::Registry reg;
    std::atomic<bool> stop{false};
    constexpr int kWriters = 4;

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&, w] {
            const std::string mine =
                "race.writer_" + std::to_string(w);
            for (int i = 0; i < 20000; ++i) {
                // Re-resolve by name every iteration (first-touch
                // path), mixing a private metric with shared ones.
                reg.counter(mine).inc();
                reg.counter("race.shared").inc();
                reg.histogram("race.lat").record(
                    static_cast<std::uint64_t>(i) * 7 + 1);
                if (i % 1000 == 0)
                    reg.gauge("race.depth").set(i);
            }
        });
    std::thread reader([&] {
        std::uint64_t last = 0;
        while (!stop.load()) {
            const obs::MetricsSnapshot snap = reg.snapshot();
            if (const auto it = snap.counters.find("race.shared");
                it != snap.counters.end()) {
                // Monotone across snapshots: no torn/lost reads.
                EXPECT_GE(it->second, last);
                last = it->second;
            }
        }
    });
    for (auto &th : writers)
        th.join();
    stop.store(true);
    reader.join();

    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("race.shared"),
              static_cast<std::uint64_t>(kWriters) * 20000);
    EXPECT_EQ(snap.histograms.at("race.lat").count,
              static_cast<std::uint64_t>(kWriters) * 20000);
}

// ---------------------------------------------------- disabled path

/**
 * With tracing disabled and metrics pre-resolved, the instrumented
 * hot path must not allocate: spans are a relaxed load, records are
 * relaxed atomic adds. This is the mechanism behind the <=5% CI
 * overhead gate.
 */
TEST(ObsDisabledPath, ZeroAllocations)
{
    obs::TraceCollector::global().disable();
    obs::Registry reg;
    obs::Counter &c = reg.counter("hot.counter");
    obs::Histogram &h = reg.histogram("hot.hist");

    const std::size_t before =
        gAllocCount.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        TWQ_SPAN("hot.span");
        TWQ_SPAN_ARG("hot.span_arg", i);
        c.inc();
        h.record(static_cast<std::uint64_t>(i));
        obs::traceInstant("hot.instant");
    }
    const std::size_t after =
        gAllocCount.load(std::memory_order_relaxed);
    EXPECT_EQ(before, after);
}

// ------------------------------------------------------------ trace

/**
 * Minimal JSON value/parser: just enough to verify the Chrome-trace
 * document the collector writes (objects, arrays, strings with
 * escapes, numbers, booleans). Parse failures surface as nullopt-ish
 * `ok == false`.
 */
struct JsonValue
{
    enum Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    } kind = Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    const JsonValue *
    get(const std::string &key) const
    {
        const auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }
};

struct JsonParser
{
    const char *p;
    const char *end;
    bool ok = true;

    void
    ws()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    eat(char c)
    {
        ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        ok = false;
        return false;
    }

    JsonValue
    parse()
    {
        ws();
        JsonValue v;
        if (p >= end) {
            ok = false;
            return v;
        }
        switch (*p) {
        case '{': {
            ++p;
            v.kind = JsonValue::Obj;
            ws();
            if (p < end && *p == '}') {
                ++p;
                return v;
            }
            while (ok) {
                ws();
                JsonValue key = parse();
                if (!ok || key.kind != JsonValue::Str) {
                    ok = false;
                    return v;
                }
                if (!eat(':'))
                    return v;
                v.obj[key.str] = parse();
                ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                eat('}');
                return v;
            }
            return v;
        }
        case '[': {
            ++p;
            v.kind = JsonValue::Arr;
            ws();
            if (p < end && *p == ']') {
                ++p;
                return v;
            }
            while (ok) {
                v.arr.push_back(parse());
                ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                eat(']');
                return v;
            }
            return v;
        }
        case '"': {
            ++p;
            v.kind = JsonValue::Str;
            while (p < end && *p != '"') {
                if (*p == '\\' && p + 1 < end) {
                    ++p;
                    switch (*p) {
                    case 'n': v.str += '\n'; break;
                    case 't': v.str += '\t'; break;
                    case 'u':
                        // \uXXXX: tests only emit ASCII controls.
                        if (end - p >= 5) {
                            v.str += static_cast<char>(std::strtol(
                                std::string(p + 1, p + 5).c_str(),
                                nullptr, 16));
                            p += 4;
                        } else {
                            ok = false;
                        }
                        break;
                    default: v.str += *p; break;
                    }
                } else {
                    v.str += *p;
                }
                ++p;
            }
            if (!eat('"'))
                ok = false;
            return v;
        }
        case 't':
        case 'f': {
            v.kind = JsonValue::Bool;
            v.b = *p == 't';
            p += v.b ? 4 : 5;
            return v;
        }
        case 'n':
            p += 4;
            return v;
        default: {
            char *after = nullptr;
            v.kind = JsonValue::Num;
            v.num = std::strtod(p, &after);
            if (after == p)
                ok = false;
            p = after;
            return v;
        }
        }
    }
};

TEST(ObsTrace, JsonSchemaNestingAndLanes)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    obs::TraceCollector &tc = obs::TraceCollector::global();
    tc.reset();
    tc.enable();

    constexpr int kWorkers = 3;
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w)
        workers.emplace_back([w] {
            obs::setThreadLane("testworker", static_cast<std::size_t>(w));
            for (int i = 0; i < 5; ++i) {
                TWQ_SPAN("outer");
                {
                    TWQ_SPAN_ARG("inner", i);
                }
                obs::traceInstant("tick", w);
            }
        });
    for (auto &t : workers)
        t.join();

    const std::string doc = tc.json();
    JsonParser parser{doc.data(), doc.data() + doc.size()};
    const JsonValue root = parser.parse();
    parser.ws();
    ASSERT_TRUE(parser.ok) << "trace JSON failed to parse";
    EXPECT_EQ(parser.p, parser.end) << "trailing garbage after JSON";
    ASSERT_EQ(root.kind, JsonValue::Obj);

    const JsonValue *events = root.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Arr);

    std::set<std::string> lanes;
    std::map<double, std::vector<const JsonValue *>> spansByTid;
    std::size_t instants = 0;
    for (const JsonValue &ev : events->arr) {
        ASSERT_EQ(ev.kind, JsonValue::Obj);
        const JsonValue *ph = ev.get("ph");
        ASSERT_NE(ph, nullptr);
        const JsonValue *name = ev.get("name");
        ASSERT_NE(name, nullptr);
        if (ph->str == "M") {
            EXPECT_EQ(name->str, "thread_name");
            const JsonValue *args = ev.get("args");
            ASSERT_NE(args, nullptr);
            lanes.insert(args->get("name")->str);
        } else if (ph->str == "X") {
            ASSERT_NE(ev.get("ts"), nullptr);
            ASSERT_NE(ev.get("dur"), nullptr);
            ASSERT_NE(ev.get("tid"), nullptr);
            spansByTid[ev.get("tid")->num].push_back(&ev);
        } else if (ph->str == "i") {
            EXPECT_EQ(name->str, "tick");
            ++instants;
        } else {
            FAIL() << "unexpected event phase " << ph->str;
        }
    }
    // One lane per worker, named as the workers named themselves.
    for (int w = 0; w < kWorkers; ++w)
        EXPECT_EQ(lanes.count("testworker " + std::to_string(w)), 1u)
            << "missing lane for worker " << w;
    EXPECT_EQ(instants, static_cast<std::size_t>(kWorkers) * 5);

    // Spans nest: every inner lies within an outer on the same lane,
    // and never spans across lanes.
    std::size_t inners = 0;
    for (const auto &[tid, spans] : spansByTid) {
        for (const JsonValue *inner : spans) {
            if (inner->get("name")->str != "inner")
                continue;
            ++inners;
            const double its = inner->get("ts")->num;
            const double iend = its + inner->get("dur")->num;
            bool nested = false;
            for (const JsonValue *outer : spans) {
                if (outer->get("name")->str != "outer")
                    continue;
                const double ots = outer->get("ts")->num;
                const double oend = ots + outer->get("dur")->num;
                if (its >= ots && iend <= oend) {
                    nested = true;
                    break;
                }
            }
            EXPECT_TRUE(nested)
                << "inner span not nested in any outer on tid "
                << tid;
            EXPECT_GE(inner->get("args")->get("arg")->num, 0.0);
        }
    }
    EXPECT_EQ(inners, static_cast<std::size_t>(kWorkers) * 5);
    tc.reset();
}

/**
 * Request attribution: spans recorded under a TraceContext — on any
 * thread — carry the minted id into the JSON and become one Chrome
 * flow; spans outside a context (or under the explicit id-0 clear)
 * stay untagged. This is the unit-level half of the end-to-end wire
 * test in test_net_introspect.cc.
 */
TEST(ObsTrace, TraceContextAttributesSpansAcrossThreads)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    obs::TraceCollector &tc = obs::TraceCollector::global();
    tc.reset();
    tc.enable();

    const std::uint64_t id = obs::mintTraceId();
    ASSERT_NE(id, 0u);
    EXPECT_NE(obs::mintTraceId(), id); // process-unique
    {
        obs::TraceContext ctx(id);
        EXPECT_EQ(obs::currentTraceId(), id);
        TWQ_SPAN("ctx.ingress");
        {
            // Id 0 deliberately clears (batch boundaries); restored
            // on exit.
            obs::TraceContext clear(0);
            EXPECT_EQ(obs::currentTraceId(), 0u);
            TWQ_SPAN("ctx.outside");
        }
        EXPECT_EQ(obs::currentTraceId(), id);
    }
    EXPECT_EQ(obs::currentTraceId(), 0u);
    std::thread worker([&] {
        obs::TraceContext ctx(id); // the id crossed a thread boundary
        TWQ_SPAN("ctx.worker");
    });
    worker.join();

    const std::string doc = tc.json();
    const std::string tag = "\"trace_id\":" + std::to_string(id);
    const auto eventHasTag = [&](const char *name) {
        const std::size_t at =
            doc.find("\"name\":\"" + std::string(name) + "\"");
        EXPECT_NE(at, std::string::npos) << name;
        if (at == std::string::npos)
            return false;
        // Bound the search to this event object: stop at the start
        // of the next one so a neighbor's args can't leak in.
        const std::size_t next = doc.find("{\"ph\"", at);
        const std::string obj = doc.substr(
            at, next == std::string::npos ? doc.size() - at
                                          : next - at);
        return obj.find(tag) != std::string::npos;
    };
    EXPECT_TRUE(eventHasTag("ctx.ingress"));
    EXPECT_TRUE(eventHasTag("ctx.worker"));
    EXPECT_FALSE(eventHasTag("ctx.outside"));

    // Both tagged spans joined one flow: a start and an end event
    // bound to the id, across the two tids.
    EXPECT_NE(doc.find("{\"ph\":\"s\",\"cat\":\"request\","
                       "\"name\":\"req\",\"id\":" +
                       std::to_string(id)),
              std::string::npos);
    EXPECT_NE(doc.find("{\"ph\":\"f\",\"cat\":\"request\","
                       "\"name\":\"req\",\"id\":" +
                       std::to_string(id)),
              std::string::npos);
    tc.reset();
}

TEST(ObsTrace, AggregateRollsUpSpans)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    obs::TraceCollector &tc = obs::TraceCollector::global();
    tc.reset();
    tc.enable();
    for (int i = 0; i < 12; ++i) {
        TWQ_SPAN("agg.stage");
    }
    obs::traceInstant("agg.instant");
    const auto totals = tc.aggregate();
    ASSERT_EQ(totals.count("agg.stage"), 1u);
    EXPECT_EQ(totals.at("agg.stage").count, 12u);
    EXPECT_EQ(totals.count("agg.instant"), 0u); // instants excluded
    tc.reset();
}

// ----------------------------------------------------------- server

/**
 * The server's own histogram view must agree with what a client
 * measures: request-latency p50/p99 within histogram bucket
 * resolution of the client-observed values (the client additionally
 * pays submit + future overhead, so it reads slightly higher), and
 * the batch-size histogram must agree exactly with the coherent
 * counter pair.
 */
TEST(ObsServer, HistogramAgreesWithClientMeasurement)
{
    if (!obs::kEnabled)
        GTEST_SKIP() << "obs compiled out";
    SessionConfig scfg;
    auto session = std::make_shared<const Session>(microServeNet(8, 4),
                                                   scfg);
    RuntimeConfig rcfg;
    rcfg.threads = 2;
    rcfg.batch.maxBatch = 4;
    auto server =
        std::make_unique<InferenceServer>(session, rcfg);

    constexpr std::size_t kWarmup = 16;
    constexpr std::size_t kRequests = 200;
    TensorD input(session->inputShape(), 0.25);
    // Warm up (thread pool spin-up, first-touch allocations), then
    // drop the warmup from the histograms so both views cover the
    // same steady-state requests.
    for (std::size_t i = 0; i < kWarmup; ++i)
        server->submit(input).get();
    server->drain();
    {
        // Counter/histogram agreement over the warmup window, before
        // the reset splits the two views: the batch-size histogram is
        // the same events as the coherent counter pair, just kept as
        // a distribution instead of a mean.
        const ServerStats warm = server->stats();
        const obs::MetricsSnapshot wsnap = server->metricsSnapshot();
        const obs::HistogramSnapshot &bs =
            wsnap.histograms.at("server.batch_size");
        EXPECT_EQ(warm.submitted, kWarmup);
        EXPECT_EQ(warm.completed, kWarmup);
        EXPECT_EQ(bs.sum, warm.completed);
        EXPECT_EQ(bs.count, warm.batches);
        EXPECT_DOUBLE_EQ(bs.mean(), warm.avgBatchSize());
    }
    server->metrics().reset();

    std::vector<double> clientMs;
    clientMs.reserve(kRequests);
    using Clock = std::chrono::steady_clock;
    for (std::size_t i = 0; i < kRequests; ++i) {
        const auto t0 = Clock::now();
        server->submit(input).get();
        clientMs.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count());
    }
    server->drain();
    const ServerStats stats = server->stats();
    const obs::MetricsSnapshot snap = server->metricsSnapshot();
    server->shutdown();

    EXPECT_EQ(stats.submitted, kWarmup + kRequests);
    EXPECT_EQ(stats.completed, kWarmup + kRequests);
    EXPECT_GE(stats.submitted, stats.completed);

    const obs::HistogramSnapshot &req =
        snap.histograms.at("server.request_latency_ns");
    const obs::HistogramSnapshot &wait =
        snap.histograms.at("server.queue_wait_ns");
    const obs::HistogramSnapshot &bs =
        snap.histograms.at("server.batch_size");
    ASSERT_EQ(req.count, kRequests);
    ASSERT_EQ(wait.count, kRequests);

    // Request latency: server view within two log2 buckets of the
    // client view — one bucket of histogram quantization plus one of
    // slack for timestamp skew (the client's submit/future overhead,
    // and the server's end timestamp possibly landing after the
    // client's future has already woken) on a microseconds-scale
    // request.
    for (double q : {0.50, 0.99}) {
        const double clientNs = percentile(clientMs, q) * 1e6;
        const double serverNs = req.quantile(q);
        ASSERT_GT(serverNs, 0.0);
        const double logRatio =
            std::log2(clientNs / serverNs);
        EXPECT_LE(std::abs(logRatio), 2.0)
            << "q=" << q << " client " << clientNs << " ns vs server "
            << serverNs << " ns";
    }
    // Queue wait is a component of request latency.
    EXPECT_LE(wait.quantile(0.5), req.quantile(0.5) + 1.0);

    // Every steady-state request was counted in exactly one batch.
    EXPECT_EQ(bs.sum, kRequests);

    // And the exposition renders the request histogram.
    const std::string text = snap.prometheusText();
    EXPECT_NE(text.find("twq_server_request_latency_ns_count"),
              std::string::npos);
}

// ------------------------------------------------------ calibration

/**
 * CalibrationCache sharing: the quantized autoSelect race prepares
 * five candidates per layer; with the shared cache the build pays 4
 * calibration passes (abs-max, fake-quantization, tap-maxima for F2
 * and F4) instead of 13, and the results are bit-identical.
 */
TEST(ObsCalibration, SharedPassesCountedAndBitIdentical)
{
    // Bit-identity holds regardless of obs.
    ConvLayerDesc d;
    d.name = "cal8";
    d.cin = 8;
    d.cout = 8;
    d.kernel = 3;
    d.stride = 1;
    d.height = 8;
    d.width = 8;
    TensorD weights({d.cout, d.cin, 3, 3});
    Rng wrng(0xca11);
    wrng.fillNormal(weights.storage(), 0.0, 0.1);
    std::vector<TensorD> cal;
    cal.emplace_back(Shape{2, d.cin, d.height, d.width});
    Rng crng(0xca12);
    crng.fillNormal(cal[0].storage(), 0.0, 1.0);
    TensorD x({1, d.cin, d.height, d.width});
    Rng xrng(0xca13);
    xrng.fillNormal(x.storage(), 0.0, 1.0);

    IntWinogradConfig cfg;
    cfg.variant = WinoVariant::F4;
    CalibrationCache cache(&cal);
    const IntWinogradConv uncached(weights, cal, cfg, nullptr);
    const IntWinogradConv cached(weights, cal, cfg, &cache);
    EXPECT_EQ(uncached.inputScale(), cached.inputScale());
    const TensorD yu = uncached.forward(x);
    const TensorD yc = cached.forward(x);
    ASSERT_EQ(yu.shape(), yc.shape());
    for (std::size_t i = 0; i < yu.numel(); ++i)
        ASSERT_EQ(yu[i], yc[i]) << "outputs diverge at " << i;

    if (!obs::kEnabled)
        return; // pass counting needs the real registry
    // A quantized autoSelect build (5 candidates racing) pays 4
    // passes per calibrated layer through the shared cache.
    obs::Counter &passes =
        obs::Registry::global().counter("quant.calibration_passes");
    const std::uint64_t before = passes.value();
    NetworkDesc net;
    net.name = "Cal8";
    net.inputRes = d.height;
    net.layers.push_back(d);
    SessionConfig scfg;
    scfg.defaultEngine = ConvEngine::WinogradInt8;
    scfg.autoSelect = true;
    const Session sel(net, scfg);
    const std::uint64_t delta = passes.value() - before;
    EXPECT_EQ(delta, 4u)
        << "expected 1 abs-max + 1 fake-quant + 2 tap-maxima passes "
           "shared across all five quantized candidates";
}

// ---------------------------------------------------------- logging

TEST(ObsLogging, SinkSeverityAndRateLimit)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    setLogSink([&](LogLevel level, const std::string &line) {
        captured.emplace_back(level, line);
    });
    const LogLevel oldLevel = logLevel();

    // Severity filter: warns pass at Info, vanish at Error.
    setLogLevel(LogLevel::Info);
    setLogRateLimit(0); // no limiting for the filter check
    twq_warn("filter check ", 1);
    twq_debug("debug below level");
    setLogLevel(LogLevel::Error);
    twq_warn("must not appear");
    setLogLevel(LogLevel::Info);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_NE(captured[0].second.find("filter check 1"),
              std::string::npos);

    // Rate limiter: 3/sec per call site; a 20-iteration burst from
    // one site emits exactly 3 lines.
    captured.clear();
    setLogRateLimit(3);
    for (int i = 0; i < 20; ++i)
        twq_warn("burst ", i);
    EXPECT_EQ(captured.size(), 3u);

    // Lines from concurrent threads arrive whole (the sink runs
    // under the logging mutex) and none are lost with limiting off.
    captured.clear();
    setLogRateLimit(0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([t] {
            for (int i = 0; i < 50; ++i)
                twq_warn("thread ", t, " line ", i);
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(captured.size(), 200u);
    for (const auto &[level, line] : captured)
        EXPECT_NE(line.find("thread "), std::string::npos);

    setLogSink(nullptr);
    setLogRateLimit(10);
    setLogLevel(oldLevel);
}

} // namespace
} // namespace twq
