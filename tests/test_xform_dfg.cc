/**
 * @file
 * Tests for the shift-add DFG: CSD decomposition, hash-consing CSE,
 * and functional equivalence with the matrix transforms.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "winograd/transforms.hh"
#include "xform/dfg.hh"

namespace twq
{
namespace
{

std::int64_t
csdValue(const std::vector<int> &digits)
{
    std::int64_t v = 0;
    for (std::size_t i = 0; i < digits.size(); ++i)
        v += static_cast<std::int64_t>(digits[i]) << i;
    return v;
}

TEST(Csd, ReconstructsValues)
{
    for (std::int64_t c : {1, 2, 3, 5, 7, 15, 24, 100, 255, 576})
        EXPECT_EQ(csdValue(csdDigits(c)), c) << c;
}

TEST(Csd, NoAdjacentNonzeroDigits)
{
    for (std::int64_t c = 1; c <= 1000; ++c) {
        const auto d = csdDigits(c);
        for (std::size_t i = 0; i + 1 < d.size(); ++i)
            EXPECT_FALSE(d[i] != 0 && d[i + 1] != 0)
                << "adjacent digits for " << c;
    }
}

TEST(Csd, TermCounts)
{
    EXPECT_EQ(csdTermCount(1), 1u);
    EXPECT_EQ(csdTermCount(4), 1u);  // single shift
    EXPECT_EQ(csdTermCount(5), 2u);  // (a<<2) + a
    EXPECT_EQ(csdTermCount(7), 2u);  // (a<<3) - a
    EXPECT_EQ(csdTermCount(-5), 2u);
}

TEST(DfgTest, ZeroFolding)
{
    Dfg d;
    const int a = d.input(0, 0);
    EXPECT_EQ(d.add(Dfg::kZero, a), a);
    EXPECT_EQ(d.add(a, Dfg::kZero), a);
    EXPECT_EQ(d.shift(Dfg::kZero, 3), Dfg::kZero);
    EXPECT_EQ(d.mulConst(a, 0), Dfg::kZero);
}

TEST(DfgTest, HashConsingSharesNodes)
{
    Dfg d;
    const int a = d.input(0, 0);
    const int b = d.input(0, 1);
    const int s1 = d.add(a, b);
    const int s2 = d.add(a, b);
    EXPECT_EQ(s1, s2);
    // Commutative canonicalization: b + a is the same node.
    const int s3 = d.add(b, a);
    EXPECT_EQ(s1, s3);
}

TEST(DfgTest, MulConstEvaluates)
{
    Dfg d;
    const int a = d.input(0, 0);
    const int five_a = d.mulConst(a, 5);
    const int m24 = d.mulConst(a, -24);
    MatrixI64 tile(1, 1);
    tile(0, 0) = 7;
    const auto vals = d.evaluate({five_a, m24}, tile);
    EXPECT_EQ(vals[0], 35);
    EXPECT_EQ(vals[1], -168);
}

class TransformDfgTest : public ::testing::TestWithParam<WinoVariant>
{};

TEST_P(TransformDfgTest, InputTransformMatchesMatrix)
{
    const WinoVariant v = GetParam();
    const WinoSpec spec = winoSpec(v);
    const TransformDfg d =
        buildTransformDfg(winoBT(v).transposed()); // T = B
    EXPECT_EQ(d.scale, 1);
    Rng rng(1);
    MatrixI64 tile(spec.t, spec.t);
    for (std::size_t i = 0; i < spec.t; ++i)
        for (std::size_t j = 0; j < spec.t; ++j)
            tile(i, j) = rng.uniformInt(-128, 127);
    const MatrixI64 got = evaluateTransformDfg(d, tile);
    const MatrixI64 want = inputTransformInt(tile, v);
    EXPECT_EQ(got, want);
}

TEST_P(TransformDfgTest, WeightTransformMatchesMatrix)
{
    const WinoVariant v = GetParam();
    const TransformDfg d =
        buildTransformDfg(winoG(v).transposed()); // T = G^T
    EXPECT_EQ(d.scale, v == WinoVariant::F2 ? 2 : 24);
    Rng rng(2);
    MatrixI64 f(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            f(i, j) = rng.uniformInt(-128, 127);
    const MatrixI64 got = evaluateTransformDfg(d, f);
    std::int64_t scale = 0;
    const MatrixI64 want = weightTransformInt(f, v, &scale);
    EXPECT_EQ(scale, d.scale * d.scale);
    EXPECT_EQ(got, want);
}

TEST_P(TransformDfgTest, OutputTransformMatchesMatrix)
{
    const WinoVariant v = GetParam();
    const WinoSpec spec = winoSpec(v);
    const TransformDfg d =
        buildTransformDfg(winoAT(v).transposed()); // T = A
    Rng rng(3);
    MatrixI64 y(spec.t, spec.t);
    for (std::size_t i = 0; i < spec.t; ++i)
        for (std::size_t j = 0; j < spec.t; ++j)
            y(i, j) = rng.uniformInt(-100000, 100000);
    const MatrixI64 got = evaluateTransformDfg(d, y);
    const MatrixI64 want = outputTransformInt(y, v);
    EXPECT_EQ(got, want);
}

TEST_P(TransformDfgTest, CseReducesOpsBelowNaive)
{
    // Naive op count: every nonzero coefficient product contributes
    // one multiply-accumulate per output tap, two 1D passes. The
    // hash-consed DFG must need strictly fewer adders.
    const WinoVariant v = GetParam();
    const auto &bt = winoBT(v);
    const TransformDfg d = buildTransformDfg(bt.transposed());
    std::size_t naive = 0;
    const MatrixI64 bi = scaledInteger(bt, 1);
    const std::size_t t = bt.rows();
    // First pass: z[u,j], second pass: y[i,j].
    for (std::size_t j = 0; j < t; ++j) {
        std::size_t nz = 0;
        for (std::size_t vv = 0; vv < t; ++vv)
            nz += bi(j, vv) != 0 ? csdTermCount(bi(j, vv)) : 0;
        naive += nz * t;        // per row u of s
        naive += nz * t;        // second pass per column
    }
    EXPECT_LT(d.dfg.numAdders(), naive);
}

TEST(TransformDfgTest, F4InputDfgIsModest)
{
    // The whole 6x6 F4 input transform must fit in a few hundred
    // adders -- the premise of a cheap hardwired engine.
    const TransformDfg d =
        buildTransformDfg(winoBT(WinoVariant::F4).transposed());
    EXPECT_LT(d.dfg.numAdders(), 400u);
    EXPECT_GT(d.dfg.numAdders(), 30u);
}

TEST(TransformDfgTest, DepthIsLogarithmicish)
{
    const TransformDfg d =
        buildTransformDfg(winoBT(WinoVariant::F4).transposed());
    std::size_t depth = 0;
    for (int r : d.outputs)
        depth = std::max(depth, d.dfg.depth(r));
    EXPECT_LE(depth, 16u);
    EXPECT_GE(depth, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TransformDfgTest,
                         ::testing::Values(WinoVariant::F2,
                                           WinoVariant::F4),
                         [](const auto &info) {
                             return winoName(info.param);
                         });

} // namespace
} // namespace twq
