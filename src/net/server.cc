#include "net/server.hh"

#include <chrono>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "layout/layout.hh"
#include "obs/perf.hh"
#include "obs/trace.hh"
#include "runtime/plan_cache.hh"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace twq::net
{

namespace
{

/** HTTP sniff/header cap: a request line + headers beyond this is
 * not a scrape client, it is garbage. */
constexpr std::size_t kMaxHttpHeaderBytes = 16 * 1024;

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

/**
 * One accepted connection. Owned by exactly one I/O loop; read,
 * parse, epoll bookkeeping, and close happen only on that loop's
 * thread. The outbound buffer is the single cross-thread surface:
 * inference workers append response frames under outMu and wake the
 * loop, which does all actual socket writes.
 */
struct NetServer::Conn
{
    int fd = -1;
    IoLoop *loop = nullptr;
    FrameDecoder decoder;

    std::mutex outMu;
    std::vector<std::uint8_t> outBuf;
    std::size_t outOff = 0;

    // Loop-thread-only state.
    bool writeArmed = false;
    bool halfClosed = false; ///< peer sent EOF; flush then close
    bool wantClose = false;  ///< close once outBuf drains
    int mode = 0;            ///< 0 = undecided, 1 = binary, 2 = HTTP
    std::string sniff;       ///< first bytes until mode is decided
    std::string httpBuf;

    std::atomic<bool> closed{false};
    std::atomic<std::uint32_t> inflight{0};

    explicit Conn(std::size_t maxFrame) : decoder(maxFrame) {}
};

/** One epoll event loop plus its cross-thread mailbox. */
struct NetServer::IoLoop
{
    std::size_t index = 0;
    int epfd = -1;
    int wakeFd = -1;
    std::thread thread;

    std::mutex mu; ///< guards incoming + ready
    std::vector<std::shared_ptr<Conn>> incoming;
    std::vector<std::shared_ptr<Conn>> ready;

    /// Loop-thread-only registry of live connections.
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
};

#if defined(__linux__)

namespace
{

std::atomic<std::int64_t> gDrainDeadlineNs{0};

} // namespace

NetServer::NetServer(InferenceServer &server, const NetConfig &cfg)
    : server_(server), cfg_(cfg)
{
    twq_assert(cfg_.ioThreads > 0, "net server needs an I/O thread");
}

NetServer::~NetServer()
{
    shutdown();
}

std::uint16_t
NetServer::start()
{
    twq_assert(!started_.load(), "NetServer started twice");

    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        twq_fatal("socket(): ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.bindAddr.c_str(), &addr.sin_addr) !=
        1)
        twq_fatal("bad bind address: ", cfg_.bindAddr);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        twq_fatal("bind(", cfg_.bindAddr, ":", cfg_.port,
                  "): ", std::strerror(errno));
    if (::listen(listenFd_, cfg_.backlog) < 0)
        twq_fatal("listen(): ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &blen);
    port_ = ntohs(bound.sin_port);

    loops_.clear();
    for (std::size_t i = 0; i < cfg_.ioThreads; ++i) {
        auto loop = std::make_unique<IoLoop>();
        loop->index = i;
        loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
        loop->wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (loop->epfd < 0 || loop->wakeFd < 0)
            twq_fatal("epoll/eventfd: ", std::strerror(errno));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = loop->wakeFd;
        epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakeFd, &ev);
        if (i == 0) {
            epoll_event lev{};
            lev.events = EPOLLIN;
            lev.data.fd = listenFd_;
            epoll_ctl(loop->epfd, EPOLL_CTL_ADD, listenFd_, &lev);
        }
        loops_.push_back(std::move(loop));
    }
    stopping_.store(false);
    startedAtNs_ = nowNs();
    started_.store(true);
    for (auto &loop : loops_) {
        IoLoop *lp = loop.get();
        loop->thread = std::thread([this, lp] {
            obs::setThreadLane("net-io", lp->index);
            loopMain(*lp);
        });
    }
    return port_;
}

void
NetServer::wake(IoLoop &loop)
{
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(loop.wakeFd, &one, sizeof(one));
}

void
NetServer::shutdown()
{
    if (!started_.load())
        return;
    gDrainDeadlineNs.store(
        nowNs() +
        static_cast<std::int64_t>(cfg_.drainTimeoutMs) * 1000000);
    stopping_.store(true);
    for (auto &loop : loops_)
        wake(*loop);
    for (auto &loop : loops_)
        if (loop->thread.joinable())
            loop->thread.join();
    for (auto &loop : loops_) {
        if (loop->epfd >= 0)
            ::close(loop->epfd);
        if (loop->wakeFd >= 0)
            ::close(loop->wakeFd);
        loop->epfd = loop->wakeFd = -1;
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    started_.store(false);
}

std::uint64_t
NetServer::requestsSeen() const
{
    return requests_.load();
}

void
NetServer::loopMain(IoLoop &loop)
{
    obs::Gauge &connGauge =
        obs::Registry::global().gauge("net.connections");
    bool listenArmed = loop.index == 0;
    epoll_event evs[64];
    for (;;) {
        const bool stopping = stopping_.load();
        const int timeout = stopping ? 10 : -1;
        const int n = ::epoll_wait(loop.epfd, evs,
                                   static_cast<int>(std::size(evs)),
                                   timeout);
        for (int i = 0; i < n; ++i) {
            const int fd = evs[i].data.fd;
            if (fd == loop.wakeFd) {
                std::uint64_t drain;
                while (::read(loop.wakeFd, &drain, sizeof(drain)) > 0) {
                }
                continue;
            }
            if (fd == listenFd_ && listenArmed) {
                acceptReady(loop);
                continue;
            }
            const auto it = loop.conns.find(fd);
            if (it == loop.conns.end())
                continue;
            std::shared_ptr<Conn> conn = it->second;
            if (evs[i].events & (EPOLLERR | EPOLLHUP)) {
                // Flush whatever the peer can still take, then drop.
                conn->wantClose = true;
                flushConn(loop, conn);
                if (!conn->closed.load())
                    closeConn(loop, conn);
                continue;
            }
            if (evs[i].events & EPOLLIN)
                handleReadable(loop, conn);
            if (!conn->closed.load() && (evs[i].events & EPOLLOUT))
                flushConn(loop, conn);
        }

        // Mailbox: adopt assigned connections, flush completions.
        std::vector<std::shared_ptr<Conn>> incoming, ready;
        {
            std::lock_guard<std::mutex> lock(loop.mu);
            incoming.swap(loop.incoming);
            ready.swap(loop.ready);
        }
        for (const auto &conn : incoming)
            adoptConn(loop, conn);
        for (const auto &conn : ready)
            if (!conn->closed.load())
                flushConn(loop, conn);

        if (stopping) {
            if (listenArmed) {
                epoll_ctl(loop.epfd, EPOLL_CTL_DEL, listenFd_, nullptr);
                listenArmed = false;
            }
            // Graceful drain: a connection may close once its
            // responses are out (or the drain deadline passes — a
            // peer that stopped reading does not get to pin the
            // server open).
            const bool expired = nowNs() > gDrainDeadlineNs.load();
            std::vector<std::shared_ptr<Conn>> closable;
            for (const auto &[fd, conn] : loop.conns) {
                // inflight first, buffer second: callbacks append
                // before decrementing, so idle-then-flushed cannot
                // miss a response (see flushConn's close decision).
                const bool idle = conn->inflight.load() == 0;
                bool flushed;
                {
                    std::lock_guard<std::mutex> lock(conn->outMu);
                    flushed = conn->outOff >= conn->outBuf.size();
                }
                if (expired || (idle && flushed))
                    closable.push_back(conn);
            }
            for (const auto &conn : closable)
                closeConn(loop, conn);
            if (loop.conns.empty())
                break;
        }
    }
    connGauge.add(0); // keep the gauge registered even if no conns
}

void
NetServer::acceptReady(IoLoop &loop)
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN or a transient accept error
        }
        if (stopping_.load()) {
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Conn>(cfg_.maxFrameBytes);
        conn->fd = fd;
        IoLoop *target =
            loops_[nextLoop_.fetch_add(1) % loops_.size()].get();
        conn->loop = target;
        if (target == &loop) {
            adoptConn(loop, conn);
        } else {
            {
                std::lock_guard<std::mutex> lock(target->mu);
                target->incoming.push_back(conn);
            }
            wake(*target);
        }
    }
}

void
NetServer::adoptConn(IoLoop &loop, const std::shared_ptr<Conn> &conn)
{
    loop.conns.emplace(conn->fd, conn);
    obs::Registry::global().gauge("net.connections").add(1);
    obs::Registry::global().counter("net.accepted").inc();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    epoll_ctl(loop.epfd, EPOLL_CTL_ADD, conn->fd, &ev);
}

void
NetServer::closeConn(IoLoop &loop, const std::shared_ptr<Conn> &conn)
{
    if (conn->closed.exchange(true))
        return;
    epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    loop.conns.erase(conn->fd);
    obs::Registry::global().gauge("net.connections").add(-1);
}

void
NetServer::handleReadable(IoLoop &loop,
                          const std::shared_ptr<Conn> &conn)
{
    char buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n > 0) {
            const char *p = buf;
            std::size_t len = static_cast<std::size_t>(n);
            if (conn->mode == 0) {
                // Sniff the transport: a binary frame would need a
                // payload length of 0x20544547 (~518 MB, over any
                // sane frame ceiling) to collide with "GET ", so the
                // first four bytes decide unambiguously.
                conn->sniff.append(p, len);
                if (conn->sniff.size() < 4)
                    continue;
                conn->mode =
                    conn->sniff.compare(0, 4, "GET ") == 0 ? 2 : 1;
                if (conn->mode == 2) {
                    conn->httpBuf = std::move(conn->sniff);
                } else {
                    conn->decoder.feed(conn->sniff.data(),
                                       conn->sniff.size());
                }
                conn->sniff.clear();
                p = nullptr;
                len = 0;
            }
            if (conn->mode == 2) {
                if (len > 0)
                    conn->httpBuf.append(p, len);
                if (conn->httpBuf.size() > kMaxHttpHeaderBytes) {
                    closeConn(loop, conn);
                    return;
                }
                if (conn->httpBuf.find("\r\n\r\n") !=
                    std::string::npos)
                    handleHttp(conn);
                continue;
            }
            if (len > 0)
                conn->decoder.feed(p, len);
            Frame frame;
            for (;;) {
                const FrameDecoder::Result r =
                    conn->decoder.next(&frame);
                if (r == FrameDecoder::Result::NeedMore)
                    break;
                if (r == FrameDecoder::Result::Error) {
                    // Framing is unrecoverable on a byte stream:
                    // answer id 0 with BadRequest and hang up.
                    obs::Registry::global()
                        .counter("net.bad_frames")
                        .inc();
                    std::vector<std::uint8_t> resp;
                    encodeResponse(0, Status::BadRequest, nullptr,
                                   resp);
                    conn->wantClose = true;
                    queueAndFlush(conn, std::move(resp));
                    return;
                }
                handleInfer(conn, std::move(frame));
                if (conn->closed.load())
                    return;
            }
            continue;
        }
        if (n == 0) {
            // Peer EOF: stop reading, flush pending responses, then
            // close. In-flight requests still complete — a client
            // that writes its requests and shuts down its send side
            // gets every response.
            conn->halfClosed = true;
            flushConn(loop, conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        closeConn(loop, conn);
        return;
    }
}

void
NetServer::handleInfer(const std::shared_ptr<Conn> &conn, Frame frame)
{
    requests_.fetch_add(1);
    obs::Registry::global().counter("net.requests").inc();
    const std::uint64_t id = frame.id;
    const bool timed = frame.type == MsgType::InferTimed;
    // Pre-execution failures answer in the request's dialect: a timed
    // request always gets a ResponseTimed back (zeroed breakdown),
    // so a client can branch on the type it asked for.
    const auto encodeFail = [timed](std::uint64_t rid, Status s,
                                    std::vector<std::uint8_t> &resp) {
        if (timed)
            encodeResponseTimed(rid, s, nullptr, 0, 0, 0, resp);
        else
            encodeResponse(rid, s, nullptr, resp);
    };
    if (frame.type != MsgType::Infer &&
        frame.type != MsgType::InferTimed) {
        std::vector<std::uint8_t> resp;
        encodeResponse(id, Status::BadRequest, nullptr, resp);
        queueAndFlush(conn, std::move(resp));
        return;
    }

    // Shape gate: accept [C, H, W] or [1, C, H, W] matching the
    // session, mirroring InferenceServer::submit's contract — but as
    // a BadRequest response, not an assert, since the bytes came off
    // the wire.
    const Shape &want = server_.session().inputShape();
    Shape shape = frame.shape;
    if (shape.size() == 3)
        shape.insert(shape.begin(), 1);
    if (shape != want) {
        std::vector<std::uint8_t> resp;
        encodeFail(id, Status::BadRequest, resp);
        queueAndFlush(conn, std::move(resp));
        return;
    }

    if (stopping_.load()) {
        std::vector<std::uint8_t> resp;
        encodeFail(id, Status::Shed, resp);
        queueAndFlush(conn, std::move(resp));
        return;
    }

    // The request's trace flow starts here, at wire ingress: the
    // net.ingress span plus every span recorded downstream (batcher,
    // worker, backend stages, response encode) carries this id.
    const std::uint64_t traceId = obs::mintTraceId();
    obs::TraceContext traceCtx(traceId);
    TWQ_SPAN("net.ingress");

    conn->inflight.fetch_add(1);
    inflight_.fetch_add(1);
    IoLoop *loop = conn->loop;
    const bool admitted = server_.submitTimed(
        TensorD(shape, std::move(frame.data)), traceId,
        [this, conn, loop, id, timed](TensorD &&out,
                                      std::exception_ptr err,
                                      const RequestTiming &t) {
            // Worker thread: encode the response into the
            // connection's outbound buffer, then hand the flush to
            // the owning I/O loop. The inflight decrements come
            // AFTER the bytes are buffered so the drain logic can
            // never observe "no inflight work" while a response has
            // yet to be made flushable. The executing worker set this
            // request's TraceContext, so the encode span joins its
            // flow.
            TWQ_SPAN("net.respond");
            if (!conn->closed.load()) {
                std::vector<std::uint8_t> resp;
                const Status s = err ? Status::Error : Status::Ok;
                const TensorD *body = err ? nullptr : &out;
                if (timed)
                    encodeResponseTimed(id, s, body, t.queueNs,
                                        t.batchNs, t.computeNs, resp);
                else
                    encodeResponse(id, s, body, resp);
                std::lock_guard<std::mutex> lock(conn->outMu);
                conn->outBuf.insert(conn->outBuf.end(), resp.begin(),
                                    resp.end());
            }
            conn->inflight.fetch_sub(1);
            inflight_.fetch_sub(1);
            {
                std::lock_guard<std::mutex> lock(loop->mu);
                loop->ready.push_back(conn);
            }
            wake(*loop);
        });
    if (!admitted) {
        conn->inflight.fetch_sub(1);
        inflight_.fetch_sub(1);
        obs::Registry::global().counter("net.shed").inc();
        std::vector<std::uint8_t> resp;
        encodeFail(id, Status::Shed, resp);
        queueAndFlush(conn, std::move(resp));
    }
}

std::string
NetServer::metricsBody(bool includeCompat) const
{
    // Refresh the trace-drop gauge at scrape time so operators see
    // ring-buffer truncation without a flush having happened.
    obs::Registry::global()
        .gauge("trace.dropped_events")
        .set(static_cast<std::int64_t>(
            obs::TraceCollector::global().droppedEvents()));
    obs::MetricsSnapshot snap = server_.metricsSnapshot();
    snap.merge(obs::Registry::global().snapshot());
    return snap.prometheusText(includeCompat);
}

namespace
{

/** Minimal JSON string escaping (names are identifiers in practice). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    out += '"';
    return out;
}

const char *
jsonBool(bool b)
{
    return b ? "true" : "false";
}

} // namespace

std::string
NetServer::statuszBody() const
{
    const Session &session = server_.session();
    const SessionConfig &sc = session.config();
    const RuntimeConfig &rc = server_.config();
    const ServerStats stats = server_.stats();
    std::ostringstream out;
    out << "{\n";
    out << " \"build\": {\"compiler\": " << jsonStr(__VERSION__)
        << ", \"obs_enabled\": " << jsonBool(obs::kEnabled)
        << ", \"perf_counters\": " << jsonBool(obs::perfAvailable())
        << ", \"plan_signature\": " << jsonStr(PlanCache::signature())
        << "},\n";
    out << " \"uptime_ns\": " << (nowNs() - startedAtNs_) << ",\n";
    out << " \"net\": {\"port\": " << port_
        << ", \"io_threads\": " << cfg_.ioThreads
        << ", \"requests\": " << requests_.load()
        << ", \"draining\": " << jsonBool(stopping_.load()) << "},\n";
    out << " \"runtime\": {\"threads\": " << rc.threads
        << ", \"max_batch\": " << rc.batch.maxBatch
        << ", \"max_wait_us\": " << rc.batch.maxWait.count()
        << ", \"pin_workers\": " << jsonBool(rc.pinWorkers)
        << ", \"max_pending\": " << rc.maxPending
        << ", \"intra_batch_parallel\": "
        << jsonBool(rc.intraBatchParallel)
        << ", \"slow_trace_threshold_ns\": " << rc.slowTraceThresholdNs
        << ", \"slow_trace_slots\": " << rc.slowTraceSlots << "},\n";
    out << " \"session\": {\"network\": "
        << jsonStr(session.network().name)
        << ", \"layer_count\": " << session.layerCount()
        << ", \"auto_select\": " << jsonBool(sc.autoSelect)
        << ", \"fuse_epilogues\": " << jsonBool(sc.fuseEpilogues)
        << ", \"race_f16\": " << jsonBool(sc.raceF16) << "},\n";
    out << " \"stats\": {\"submitted\": " << stats.submitted
        << ", \"completed\": " << stats.completed
        << ", \"batches\": " << stats.batches
        << ", \"shed\": " << stats.shed << "},\n";
    out << " \"layers\": [\n";
    for (std::size_t i = 0; i < session.layerCount(); ++i) {
        const LayerPlanInfo plan = session.layerPlan(i);
        const LayoutPlan &layout = session.layerLayout(i);
        out << "  {\"name\": " << jsonStr(plan.name)
            << ", \"engine\": "
            << jsonStr(convEngineName(plan.engine))
            << ", \"variant\": " << jsonStr(winoName(plan.variant))
            << ", \"layout_in\": "
            << jsonStr(actLayoutName(layout.in))
            << ", \"layout_out\": "
            << jsonStr(actLayoutName(layout.out))
            << ", \"plan_source\": " << jsonStr(plan.source)
            << ", \"probe_ns\": " << plan.probeNs;
        if (plan.counters.valid) {
            out << ", \"perf\": {\"cycles\": " << plan.counters.cycles
                << ", \"instructions\": "
                << plan.counters.instructions
                << ", \"ipc\": " << plan.counters.ipc()
                << ", \"cache_refs\": " << plan.counters.cacheRefs
                << ", \"cache_misses\": " << plan.counters.cacheMisses
                << ", \"miss_rate\": " << plan.counters.missRate()
                << "}";
        } else {
            out << ", \"perf\": null";
        }
        out << "}" << (i + 1 < session.layerCount() ? "," : "")
            << "\n";
    }
    out << " ]\n}\n";
    return out.str();
}

std::string
NetServer::tracezBody() const
{
    const RuntimeConfig &rc = server_.config();
    const std::vector<SlowRequestRecord> recs =
        server_.slowRequests();
    std::ostringstream out;
    out << "{\n \"threshold_ns\": " << rc.slowTraceThresholdNs
        << ",\n \"slots\": " << rc.slowTraceSlots
        << ",\n \"records\": [\n";
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const SlowRequestRecord &r = recs[i];
        out << "  {\"id\": " << r.id << ", \"trace_id\": " << r.traceId
            << ", \"queue_ns\": " << r.timing.queueNs
            << ", \"batch_ns\": " << r.timing.batchNs
            << ", \"compute_ns\": " << r.timing.computeNs
            << ", \"total_ns\": " << r.totalNs
            << ", \"batch_size\": " << r.batchSize
            << ", \"when_ns\": " << r.whenNs << "}"
            << (i + 1 < recs.size() ? "," : "") << "\n";
    }
    out << " ]\n}\n";
    return out.str();
}

void
NetServer::handleHttp(const std::shared_ptr<Conn> &conn)
{
    obs::Registry::global().counter("net.http_requests").inc();
    // Request line: "GET <path>[?query] HTTP/1.x". This is an
    // introspection surface, not a web server: four fixed paths,
    // anything else 404s.
    std::string path;
    const std::size_t sp1 = conn->httpBuf.find(' ');
    if (sp1 != std::string::npos) {
        const std::size_t sp2 = conn->httpBuf.find(' ', sp1 + 1);
        if (sp2 != std::string::npos)
            path = conn->httpBuf.substr(sp1 + 1, sp2 - sp1 - 1);
    }
    std::string query;
    if (const std::size_t qm = path.find('?');
        qm != std::string::npos) {
        query = path.substr(qm + 1);
        path.resize(qm);
    }
    std::string body, status;
    std::string ctype = "text/plain; version=0.0.4; charset=utf-8";
    if (path == "/metrics" || path == "/") {
        status = "200 OK";
        body = metricsBody(query.find("compat=1") !=
                           std::string::npos);
    } else if (path == "/statusz") {
        status = "200 OK";
        ctype = "application/json";
        body = statuszBody();
    } else if (path == "/tracez") {
        status = "200 OK";
        ctype = "application/json";
        body = tracezBody();
    } else if (path == "/healthz") {
        // The load-balancer eviction signal: draining hosts answer
        // 503 so they fall out of rotation while in-flight requests
        // finish.
        if (stopping_.load()) {
            status = "503 Service Unavailable";
            body = "draining\n";
        } else {
            status = "200 OK";
            body = "ok\n";
        }
    } else {
        status = "404 Not Found";
        body = "try /metrics, /statusz, /healthz or /tracez\n";
    }
    std::string resp = "HTTP/1.0 " + status +
                       "\r\nContent-Type: " + ctype +
                       "\r\nContent-Length: " +
                       std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n" + body;
    conn->wantClose = true;
    queueAndFlush(conn,
                  std::vector<std::uint8_t>(resp.begin(), resp.end()));
}

void
NetServer::queueAndFlush(const std::shared_ptr<Conn> &conn,
                         std::vector<std::uint8_t> bytes)
{
    {
        std::lock_guard<std::mutex> lock(conn->outMu);
        conn->outBuf.insert(conn->outBuf.end(), bytes.begin(),
                            bytes.end());
    }
    flushConn(*conn->loop, conn);
}

void
NetServer::flushConn(IoLoop &loop, const std::shared_ptr<Conn> &conn)
{
    if (conn->closed.load())
        return;
    bool fatal = false;
    bool empty;
    {
        std::lock_guard<std::mutex> lock(conn->outMu);
        while (conn->outOff < conn->outBuf.size()) {
            const ssize_t n = ::send(
                conn->fd, conn->outBuf.data() + conn->outOff,
                conn->outBuf.size() - conn->outOff, MSG_NOSIGNAL);
            if (n > 0) {
                conn->outOff += static_cast<std::size_t>(n);
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            if (errno == EINTR)
                continue;
            fatal = true;
            break;
        }
        if (conn->outOff >= conn->outBuf.size()) {
            conn->outBuf.clear();
            conn->outOff = 0;
        } else if (conn->outOff > (std::size_t{1} << 20)) {
            conn->outBuf.erase(
                conn->outBuf.begin(),
                conn->outBuf.begin() +
                    static_cast<std::ptrdiff_t>(conn->outOff));
            conn->outOff = 0;
        }
        empty = conn->outBuf.empty();
    }
    if (fatal) {
        closeConn(loop, conn);
        return;
    }
    const bool readable = !conn->halfClosed;
    const bool writable = !empty;
    if (writable != conn->writeArmed || conn->halfClosed) {
        conn->writeArmed = writable;
        epoll_event ev{};
        ev.events = (readable ? EPOLLIN : 0u) |
                    (writable ? EPOLLOUT : 0u);
        ev.data.fd = conn->fd;
        epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn->fd, &ev);
    }
    if (!conn->wantClose && !conn->halfClosed)
        return;
    // Close-after-flush decision. Order matters: a worker callback
    // appends its response BEFORE decrementing inflight, so reading
    // inflight == 0 first guarantees every response that will ever
    // exist is already visible in outBuf when we re-check it —
    // checking a pre-read `empty` here would race a callback landing
    // between the flush above and this test and drop its response.
    if (conn->inflight.load() != 0)
        return;
    bool stillEmpty;
    {
        std::lock_guard<std::mutex> lock(conn->outMu);
        stillEmpty = conn->outBuf.empty();
    }
    if (stillEmpty)
        closeConn(loop, conn);
}

#else // !__linux__ ------------------------------------------- stub

NetServer::NetServer(InferenceServer &server, const NetConfig &cfg)
    : server_(server), cfg_(cfg)
{}

NetServer::~NetServer() = default;

std::uint16_t
NetServer::start()
{
    twq_fatal("the network front door requires Linux epoll");
}

void
NetServer::shutdown()
{}

std::uint64_t
NetServer::requestsSeen() const
{
    return 0;
}

void NetServer::loopMain(IoLoop &) {}
void NetServer::acceptReady(IoLoop &) {}
void NetServer::adoptConn(IoLoop &, const std::shared_ptr<Conn> &) {}
void NetServer::handleReadable(IoLoop &, const std::shared_ptr<Conn> &)
{}
void NetServer::handleInfer(const std::shared_ptr<Conn> &, Frame) {}
void NetServer::handleHttp(const std::shared_ptr<Conn> &) {}
void NetServer::queueAndFlush(const std::shared_ptr<Conn> &,
                              std::vector<std::uint8_t>)
{}
void NetServer::flushConn(IoLoop &, const std::shared_ptr<Conn> &) {}
void NetServer::closeConn(IoLoop &, const std::shared_ptr<Conn> &) {}
void NetServer::wake(IoLoop &) {}

std::string
NetServer::metricsBody(bool) const
{
    return {};
}

std::string
NetServer::statuszBody() const
{
    return {};
}

std::string
NetServer::tracezBody() const
{
    return {};
}

#endif // __linux__

} // namespace twq::net
