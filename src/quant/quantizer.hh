/**
 * @file
 * Core uniform quantization primitives (Eq. (2) of the paper).
 *
 * Values are approximated as x ≈ s * x_int with a shared scale s and
 * x_int = clamp(round(x/s), -2^(n-1), 2^(n-1)-1). The scale is
 * calibrated from a running average of observed maxima; for hardware
 * friendliness scales can be restricted to powers of two so that
 * (de)quantization becomes a shift.
 */

#ifndef TWQ_QUANT_QUANTIZER_HH
#define TWQ_QUANT_QUANTIZER_HH

#include <cstdint>
#include <vector>

namespace twq
{

/** Largest representable quantized magnitude for n-bit signed. */
constexpr std::int64_t
quantMax(int bits)
{
    return (std::int64_t{1} << (bits - 1)) - 1;
}

constexpr std::int64_t
quantMin(int bits)
{
    return -(std::int64_t{1} << (bits - 1));
}

/** Scale for a calibrated maximum (s = xmax / (2^(n-1) - 1)). */
double scaleForMax(double xmax, int bits);

/** clamp(round(x/s)) to n-bit signed. */
std::int64_t quantize(double x, double scale, int bits);

/** s * q. */
double dequantize(std::int64_t q, double scale);

/** Quantize-dequantize ("fake quantization") in one step. */
double fakeQuantize(double x, double scale, int bits);

/** Round a positive scale up to the next power of two (2^ceil(log2 s)). */
double pow2Ceil(double s);

/** Round a positive scale to the nearest power of two in log space. */
double pow2Nearest(double s);

/** Integer log2 of an exact power-of-two scale (may be negative). */
int log2Exact(double pow2_scale);

/**
 * Running-average maximum tracker used for calibration
 * ("we calibrate xmax by calculating a running average of the maximum
 * values obtained during training").
 */
class MaxCalibrator
{
  public:
    /** @param momentum EMA momentum; first observation seeds the EMA. */
    explicit MaxCalibrator(double momentum = 0.9)
        : momentum_(momentum)
    {}

    /** Observe the absolute maximum of one batch. */
    void observe(double batch_absmax);

    /** Observe every element of a buffer. */
    void observeAll(const std::vector<double> &values);

    /** Calibrated maximum; 0 before any observation. */
    double max() const { return seeded_ ? ema_ : 0.0; }

    /** Calibrated scale for n-bit quantization. */
    double scale(int bits) const;

    bool seeded() const { return seeded_; }

  private:
    double momentum_;
    double ema_ = 0.0;
    bool seeded_ = false;
};

} // namespace twq

#endif // TWQ_QUANT_QUANTIZER_HH
