/**
 * @file
 * NEON kernels for the NCHWc8 blocked Winograd passes on aarch64,
 * where Advanced SIMD is baseline (no special compile flags). Same
 * schedules as the AVX2 TU with the 8-wide c-block held in four
 * float64x2 registers per accumulator row; scalar tails use std::fma
 * to match vfmaq's fused rounding.
 */

#include "layout/kernels.hh"

#if defined(__aarch64__)

#include <arm_neon.h>
#include <cmath>

namespace twq
{
namespace layout
{

namespace
{

void
neonTapGemmD(const double *w, const double *u, double *m,
             std::size_t coutb, std::size_t cinb, std::size_t P,
             std::size_t p0, std::size_t pn)
{
    constexpr std::size_t B = kLayoutBlock;
    constexpr std::size_t kVecs = B / 2;
    const std::size_t cinp = cinb * B;
    for (std::size_t co = 0; co < coutb; ++co) {
        const double *wt = w + co * cinp * B;
        for (std::size_t p = p0; p < p0 + pn; p += kTapPr) {
            const std::size_t pr = std::min(kTapPr, p0 + pn - p);
            float64x2_t acc[kTapPr][kVecs];
            for (std::size_t pp = 0; pp < pr; ++pp)
                for (std::size_t v = 0; v < kVecs; ++v)
                    acc[pp][v] = vdupq_n_f64(0.0);
            for (std::size_t cbi = 0; cbi < cinb; ++cbi) {
                const double *ub = u + (cbi * P + p) * B;
                const double *wb = wt + cbi * B * B;
                for (std::size_t li = 0; li < B; ++li) {
                    float64x2_t wv[kVecs];
                    for (std::size_t v = 0; v < kVecs; ++v)
                        wv[v] = vld1q_f64(wb + li * B + 2 * v);
                    for (std::size_t pp = 0; pp < pr; ++pp) {
                        const float64x2_t uv =
                            vdupq_n_f64(ub[pp * B + li]);
                        for (std::size_t v = 0; v < kVecs; ++v)
                            acc[pp][v] =
                                vfmaq_f64(acc[pp][v], uv, wv[v]);
                    }
                }
            }
            for (std::size_t pp = 0; pp < pr; ++pp) {
                double *dst = m + (co * P + p + pp) * B;
                for (std::size_t v = 0; v < kVecs; ++v)
                    vst1q_f64(dst + 2 * v, acc[pp][v]);
            }
        }
    }
}

void
neonKronD(const WinoKronPlan<double> &plan, const double *x,
          std::size_t len, double *y)
{
    for (std::size_t r = 0; r < plan.rowsOut; ++r) {
        double *yr = y + r * len;
        const std::uint32_t begin = plan.rowStart[r];
        const std::uint32_t end = plan.rowStart[r + 1];
        if (begin == end) {
            std::fill(yr, yr + len, 0.0);
            continue;
        }
        {
            const auto &t0 = plan.terms[begin];
            const double *xr = x + t0.in * len;
            const float64x2_t cv = vdupq_n_f64(t0.coeff);
            std::size_t l = 0;
            for (; l + 2 <= len; l += 2)
                vst1q_f64(yr + l,
                          vmulq_f64(cv, vld1q_f64(xr + l)));
            for (; l < len; ++l)
                yr[l] = t0.coeff * xr[l];
        }
        for (std::uint32_t ti = begin + 1; ti < end; ++ti) {
            const auto &term = plan.terms[ti];
            const double *xr = x + term.in * len;
            const float64x2_t cv = vdupq_n_f64(term.coeff);
            std::size_t l = 0;
            for (; l + 2 <= len; l += 2)
                vst1q_f64(yr + l,
                          vfmaq_f64(vld1q_f64(yr + l), cv,
                                    vld1q_f64(xr + l)));
            for (; l < len; ++l)
                yr[l] = std::fma(term.coeff, xr[l], yr[l]);
        }
    }
}

/**
 * Widening int16 tap-GEMM: vld2q_s16 de-interleaves a pair-
 * interleaved weight vector into the even/odd channel halves, and
 * two vmlal_s16 per half accumulate int16 x int16 products into the
 * int32 lane accumulators. Integer sums are order-free, so this is
 * bit-identical to the scalar reference.
 */
void
neonTapGemmI16(const std::int16_t *w, const std::int16_t *u,
               std::int32_t *m, std::size_t coutb, std::size_t cinb,
               std::size_t P, std::size_t p0, std::size_t pn)
{
    constexpr std::size_t B = kLayoutBlock;
    const std::size_t pairs = cinb * B / 2;
    for (std::size_t co = 0; co < coutb; ++co) {
        const std::int16_t *wt = w + co * pairs * 2 * B;
        for (std::size_t p = p0; p < p0 + pn; p += kTapPr) {
            const std::size_t pr = std::min(kTapPr, p0 + pn - p);
            int32x4_t acc[kTapPr][2];
            for (std::size_t pp = 0; pp < pr; ++pp) {
                acc[pp][0] = vdupq_n_s32(0);
                acc[pp][1] = vdupq_n_s32(0);
            }
            for (std::size_t cp = 0; cp < pairs; ++cp) {
                const std::int16_t *ub =
                    u + ((cp / 4) * P + p) * B + (cp % 4) * 2;
                const int16x8x2_t wv = vld2q_s16(wt + cp * 2 * B);
                for (std::size_t pp = 0; pp < pr; ++pp) {
                    const int16x4_t u0 = vdup_n_s16(ub[pp * B]);
                    const int16x4_t u1 = vdup_n_s16(ub[pp * B + 1]);
                    acc[pp][0] = vmlal_s16(
                        acc[pp][0], vget_low_s16(wv.val[0]), u0);
                    acc[pp][0] = vmlal_s16(
                        acc[pp][0], vget_low_s16(wv.val[1]), u1);
                    acc[pp][1] = vmlal_s16(
                        acc[pp][1], vget_high_s16(wv.val[0]), u0);
                    acc[pp][1] = vmlal_s16(
                        acc[pp][1], vget_high_s16(wv.val[1]), u1);
                }
            }
            for (std::size_t pp = 0; pp < pr; ++pp) {
                std::int32_t *dst = m + (co * P + p + pp) * B;
                vst1q_s32(dst, acc[pp][0]);
                vst1q_s32(dst + 4, acc[pp][1]);
            }
        }
    }
}

} // namespace

LayoutKernels
neonLayoutKernels()
{
    // The integer kron, requantization and dequant-scale passes keep
    // the scalar forms on NEON: they autovectorize well, and NEON's
    // native rounding shifts (vrshr) round halfway cases toward
    // +inf, not away from zero, so a hand-written version would have
    // to spend the saved instructions on sign fixups anyway. The
    // u8 x s8 tap GEMM stays null — it exists for vpdpbusd hosts.
    LayoutKernels k;
    k.tapGemm = &neonTapGemmD;
    k.kron = &neonKronD;
    k.tapGemmI16 = &neonTapGemmI16;
    k.kronI32 = &scalarKronI32<>;
    k.rescaleI16 = &scalarRescaleI16<>;
    k.rescaleU8 = &scalarRescaleU8<>;
    k.scaleI32F64 = &scalarScaleI32F64<>;
    k.quantizeI32 = &scalarQuantizeI32<>;
    k.quantizeI8 = &scalarQuantizeI8<>;
    k.name = "neon";
    return k;
}

} // namespace layout
} // namespace twq

#else // !__aarch64__

namespace twq
{
namespace layout
{

LayoutKernels
neonLayoutKernels()
{
    return {};
}

} // namespace layout
} // namespace twq

#endif
