/**
 * @file
 * Singular value decomposition and Moore-Penrose pseudo-inverse.
 *
 * The paper back-transforms Winograd-domain quantized weights to the
 * spatial domain via the Moore-Penrose inverse of the transformation
 * matrices "based on SVD" (Section V-A4); this file provides exactly
 * that, using a one-sided Jacobi SVD which is robust and plenty fast
 * for the small (<= 6x6) matrices involved.
 */

#ifndef TWQ_QUANT_PINV_HH
#define TWQ_QUANT_PINV_HH

#include <vector>

#include "tensor/matrix.hh"

namespace twq
{

/** Thin SVD A = U diag(S) V^T for an m x n matrix with m >= n. */
struct Svd
{
    MatrixD u;             ///< [m, n], orthonormal columns
    std::vector<double> s; ///< [n], non-negative, descending
    MatrixD v;             ///< [n, n], orthogonal
};

/**
 * One-sided Jacobi SVD.
 *
 * @param a input matrix; if a.rows() < a.cols() the decomposition is
 *          computed on the transpose and swapped back.
 */
Svd svd(const MatrixD &a);

/**
 * Moore-Penrose pseudo-inverse via SVD, dropping singular values
 * below rel_tol * s_max.
 */
MatrixD pinv(const MatrixD &a, double rel_tol = 1e-12);

/** Frobenius norm. */
double frobeniusNorm(const MatrixD &a);

} // namespace twq

#endif // TWQ_QUANT_PINV_HH
