/**
 * @file
 * AVX2 int8 -> int32 pairwise-widening micro-kernel. This TU is
 * compiled with -mavx2 (see CMakeLists.txt) on x86-64 and selected at
 * runtime only when the CPU reports AVX2.
 *
 * The schedule mirrors blockedGemmImpl — Mr x Nc accumulator tile,
 * packed A panel, ascending-k accumulation carried through C between
 * K panels — widened to 16 columns of int32 (two ymm per A row). K is
 * consumed in pairs: two B rows sign-extend to int16 and interleave
 * per column, the packed A pair broadcasts as one 32-bit lane, and
 * `vpmaddwd` pair-sums u16xs16 products straight into the int32
 * accumulators.
 *
 * This is the exact form of the classic `vpmaddubsw` widening idiom:
 * `vpmaddubsw` on u8 x s8 operands computes the same k-pair sums one
 * step earlier (no explicit widening) but saturates them to int16,
 * which full-range 8-bit operands can reach (255 * 128 * 2 > 2^15) —
 * a silent wrong answer the library's bit-exactness contract cannot
 * absorb. Widening to int16 first makes every pair sum exact:
 * |products| <= 2^14, their sum fits int32 trivially, and the int32
 * accumulation is plain wrap-free addition for k <= 2^16 (asserted at
 * the entry point). The unpack interleave leaves columns in lane
 * order {0-3, 8-11 | 4-7, 12-15}; one vperm2i128 pair per row at
 * load/store restores memory order, so C always holds plain row-major
 * int32.
 */

#include "gemm/kernels.hh"

#if defined(__AVX2__)

#include <immintrin.h>

namespace twq
{
namespace gemm
{

namespace
{

/// Sign-extend two packed A bytes into one broadcastable i16 pair.
inline int
packPair(std::int8_t a0, std::int8_t a1)
{
    return static_cast<int>(
        (static_cast<std::uint32_t>(
             static_cast<std::uint16_t>(static_cast<std::int16_t>(a0))) |
         (static_cast<std::uint32_t>(static_cast<std::uint16_t>(
              static_cast<std::int16_t>(a1)))
          << 16)));
}

void
avx2GemmS8Impl(const std::int8_t *a, const std::int8_t *b,
               std::int32_t *c, std::size_t m, std::size_t k,
               std::size_t n, std::size_t ldb, std::size_t ldc,
               std::int8_t *pack)
{
    if (k == 0) {
        gemmS8ZeroC(c, m, n, ldc);
        return;
    }
    constexpr std::size_t kNc = 16; // int32 columns per vector tile
    const __m256i zero = _mm256_setzero_si256();
    for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
        const std::size_t kb = std::min(kKc, k - k0);
        const bool first = k0 == 0;
        for (std::size_t i0 = 0; i0 < m; i0 += kMr) {
            const std::size_t mr = std::min(kMr, m - i0);
            packA(a, m, k, /*transA=*/false, i0, mr, k0, kb, pack);

            // Broadcast pairs assembled once per panel — they depend
            // only on the packed panel, not the column tile (an odd
            // K tail pairs with zero).
            const std::size_t pairs = (kb + 1) / 2;
            int apair[kKc / 2][kMr];
            for (std::size_t pi = 0; pi < pairs; ++pi) {
                const std::int8_t *ap = pack + 2 * pi * kMr;
                for (std::size_t r = 0; r < kMr; ++r)
                    apair[pi][r] = packPair(
                        ap[r],
                        2 * pi + 1 < kb ? ap[kMr + r] : 0);
            }

            std::size_t j0 = 0;
            for (; j0 + kNc <= n; j0 += kNc) {
                // acc[r][0] holds columns {0-3, 8-11}, acc[r][1]
                // columns {4-7, 12-15} (the unpack interleave order);
                // the vperm2i128 pair below converts to/from memory
                // order.
                __m256i acc[kMr][2];
                for (std::size_t r = 0; r < kMr; ++r) {
                    if (!first && r < mr) {
                        const std::int32_t *cr =
                            c + (i0 + r) * ldc + j0;
                        const __m256i lo = _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(cr));
                        const __m256i hi = _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(cr + 8));
                        acc[r][0] =
                            _mm256_permute2x128_si256(lo, hi, 0x20);
                        acc[r][1] =
                            _mm256_permute2x128_si256(lo, hi, 0x31);
                    } else {
                        acc[r][0] = zero;
                        acc[r][1] = zero;
                    }
                }
                for (std::size_t pi = 0; pi < pairs; ++pi) {
                    const std::size_t kk = 2 * pi;
                    const std::int8_t *b0 = b + (k0 + kk) * ldb + j0;
                    const __m256i b0w =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(b0)));
                    // An odd K tail pairs with a zero row, matching
                    // the zero-padded broadcast pair.
                    const __m256i b1w =
                        kk + 1 < kb
                            ? _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                  reinterpret_cast<const __m128i *>(
                                      b0 + ldb)))
                            : zero;
                    const __m256i lo =
                        _mm256_unpacklo_epi16(b0w, b1w);
                    const __m256i hi =
                        _mm256_unpackhi_epi16(b0w, b1w);
                    for (std::size_t r = 0; r < kMr; ++r) {
                        const __m256i av =
                            _mm256_set1_epi32(apair[pi][r]);
                        acc[r][0] = _mm256_add_epi32(
                            acc[r][0], _mm256_madd_epi16(av, lo));
                        acc[r][1] = _mm256_add_epi32(
                            acc[r][1], _mm256_madd_epi16(av, hi));
                    }
                }
                for (std::size_t r = 0; r < mr; ++r) {
                    std::int32_t *cr = c + (i0 + r) * ldc + j0;
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(cr),
                        _mm256_permute2x128_si256(acc[r][0],
                                                  acc[r][1], 0x20));
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(cr + 8),
                        _mm256_permute2x128_si256(acc[r][0],
                                                  acc[r][1], 0x31));
                }
            }
            gemmS8EdgeCols(pack, b, c, i0, mr, j0, n, k0, kb, ldb,
                           ldc, first);
        }
    }
}

} // namespace

GemmS8Fn
avx2GemmS8()
{
    if (__builtin_cpu_supports("avx2"))
        return &avx2GemmS8Impl;
    return nullptr;
}

} // namespace gemm
} // namespace twq

#else // !__AVX2__

namespace twq
{
namespace gemm
{

GemmS8Fn
avx2GemmS8()
{
    return nullptr;
}

} // namespace gemm
} // namespace twq

#endif
