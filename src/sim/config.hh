/**
 * @file
 * Static configuration of the modeled accelerator (Section IV-A and
 * Table V of the paper).
 *
 * The system has two DaVinci-style AI cores sharing an external
 * LPDDR4x-class memory through a broadcast unit. Each core has a
 * Cube Unit (int8 [16x32] x [32x16] MatMul per cycle), a 256B-wide
 * Vector Unit, MTE transfer engines with im2col and Winograd
 * transformation hardware, and a software-managed memory hierarchy
 * (L0A/L0B/L0C/L1/UB). Power and per-byte access energies are the
 * post-layout figures published in Table V.
 */

#ifndef TWQ_SIM_CONFIG_HH
#define TWQ_SIM_CONFIG_HH

#include <cstddef>

namespace twq
{

/** Per-byte access energy of one memory (pJ/B, Table V). */
struct MemCost
{
    double readPj = 0.0;
    double writePj = 0.0;
};

/** Accelerator configuration with Table V defaults. */
struct AcceleratorConfig
{
    // --- system ---
    std::size_t cores = 2;
    double clockGhz = 0.5; ///< 500 MHz

    // --- Cube Unit: [16, 32] x [32, 16] int8 MatMul per cycle ---
    std::size_t cubeM = 16;  ///< output rows per step
    std::size_t cubeK = 32;  ///< reduction depth per step
    std::size_t cubeN = 16;  ///< output cols per step

    /** MACs per cycle per core. */
    double
    cubeMacsPerCycle() const
    {
        return static_cast<double>(cubeM * cubeK * cubeN);
    }

    /** Peak system throughput in Op/s (1 MAC = 1 Op as in Table VI). */
    double
    peakOps() const
    {
        return cubeMacsPerCycle() * static_cast<double>(cores) *
               clockGhz * 1e9;
    }

    // --- Vector Unit ---
    double vectorBytesPerCycle = 256.0;

    // --- external memory (Section V-B1) ---
    double dramBytesPerCycle = 81.2; ///< ~0.8 * 51.2 GB/s at 500 MHz
    double dramLatencyCycles = 150.0;
    double dramJitterSigma = 5.0;
    double bwScale = 1.0; ///< 1.5 models the DDR5 variant of Table VII

    double
    dramBw() const
    {
        return dramBytesPerCycle * bwScale;
    }

    // --- on-chip memories (sizes in bytes, costs from Table V) ---
    std::size_t l0aBytes = 64 * 1024;
    std::size_t l0bBytes = 64 * 1024;
    std::size_t l0cBytes = 288 * 1024;
    std::size_t l1Bytes = 1248 * 1024;

    MemCost l0aCost{0.22, 0.24};
    MemCost l0bCost{0.22, 0.24};
    MemCost l0cCostPortA{0.23, 0.29};
    /// Port B read cost: 0.31 pJ/B for im2col, 0.69 pJ/B when the
    /// rotation logic is exercised by the Winograd kernel.
    double l0cPortBReadIm2colPj = 0.31;
    double l0cPortBReadWinoPj = 0.69;
    MemCost l1Cost{0.92, 0.68};

    // --- unit peak powers at 0.8 V / 500 MHz (mW, Table V) ---
    double cubePowerIm2colMw = 1521.0;
    double cubePowerWinoMw = 1923.0;
    double im2colEnginePowerMw = 30.0;
    double inXformPowerMw = 145.0;
    double wtXformPowerMw = 228.0;
    double outXformPowerMw = 114.0;

    // --- unit areas (mm^2, Table V) ---
    double cubeAreaMm2 = 2.04;
    double im2colAreaMm2 = 0.03;
    double inXformAreaMm2 = 0.23;
    double wtXformAreaMm2 = 0.32;
    double outXformAreaMm2 = 0.10;
    double l0aAreaMm2 = 0.32;
    double l0bAreaMm2 = 0.32;
    double l0cAreaMm2 = 1.24;
    double l1AreaMm2 = 5.97;

    /** Total core area implied by the Table V breakdown (56.1% L1). */
    double
    coreAreaMm2() const
    {
        return l1AreaMm2 / 0.561;
    }

    // --- Winograd engine parallelism (Section IV-B2) ---
    std::size_t inXformParallel = 64;  ///< Pc=32, Ps=2
    std::size_t outXformParallel = 16; ///< along output channels

    /// Fraction of L1 budgeted for (transformed) weights; the rest
    /// holds double-buffered activations.
    double l1WeightFraction = 0.5;

    /// Broadcast Unit (Fig. 2): when enabled, iFMs are streamed from
    /// GM once and broadcast to both cores; when disabled each core
    /// issues its own reads, almost doubling the iFM bandwidth
    /// demand (Section IV-B2).
    bool broadcastUnit = true;

    /// Fixed scheduling overhead charged per L1 block iteration
    /// (instruction dispatch + token synchronization).
    double blockOverheadCycles = 60.0;

    /** Convert unit power (mW) to energy per cycle (pJ/cycle). */
    double
    mwToPjPerCycle(double mw) const
    {
        return mw / clockGhz; // mW / GHz = pJ/cycle
    }
};

} // namespace twq

#endif // TWQ_SIM_CONFIG_HH
