/**
 * @file
 * Tests for the Broadcast Unit model (Section IV-B2: sharing iFMs
 * between the two cores almost halves the required bandwidth).
 */

#include <gtest/gtest.h>

#include "sim/operators.hh"

namespace twq
{
namespace
{

ConvWorkload
wl(std::size_t b, std::size_t hw, std::size_t cin, std::size_t cout)
{
    ConvWorkload w;
    w.batch = b;
    w.hOut = hw;
    w.wOut = hw;
    w.cin = cin;
    w.cout = cout;
    return w;
}

TEST(Broadcast, DoublesIfmTrafficWhenDisabled)
{
    AcceleratorConfig with, without;
    without.broadcastUnit = false;
    const ConvWorkload w = wl(8, 32, 256, 256);
    const OpPerf a = simulateConv(w, OpKind::WinogradF4, with);
    const OpPerf b = simulateConv(w, OpKind::WinogradF4, without);
    EXPECT_DOUBLE_EQ(b.traffic.gmRdFm, 2.0 * a.traffic.gmRdFm);
}

TEST(Broadcast, WeightTrafficUnaffected)
{
    AcceleratorConfig with, without;
    without.broadcastUnit = false;
    const ConvWorkload w = wl(8, 32, 256, 256);
    const OpPerf a = simulateConv(w, OpKind::WinogradF4, with);
    const OpPerf b = simulateConv(w, OpKind::WinogradF4, without);
    // Each core loads its own output channels' weights either way.
    EXPECT_DOUBLE_EQ(b.traffic.gmRdWt, a.traffic.gmRdWt);
}

TEST(Broadcast, HurtsBandwidthBoundLayers)
{
    AcceleratorConfig with, without;
    without.broadcastUnit = false;
    // A bandwidth-bound Winograd layer slows down without the BU.
    const ConvWorkload w = wl(8, 64, 256, 256);
    const double t_with =
        simulateConv(w, OpKind::WinogradF4, with).cycles;
    const double t_without =
        simulateConv(w, OpKind::WinogradF4, without).cycles;
    EXPECT_GT(t_without, t_with);
}

TEST(Broadcast, ComputeBoundLayersUnaffected)
{
    AcceleratorConfig with, without;
    without.broadcastUnit = false;
    // A strongly compute-bound im2col layer has bandwidth headroom;
    // losing the BU does not change its runtime materially.
    const ConvWorkload w = wl(8, 16, 512, 512);
    const double t_with =
        simulateConv(w, OpKind::Im2col, with).cycles;
    const double t_without =
        simulateConv(w, OpKind::Im2col, without).cycles;
    EXPECT_LT(t_without, 1.6 * t_with);
}

TEST(Broadcast, L1CopiesExistPerCoreEitherWay)
{
    AcceleratorConfig with, without;
    without.broadcastUnit = false;
    const ConvWorkload w = wl(8, 32, 256, 256);
    const OpPerf a = simulateConv(w, OpKind::WinogradF4, with);
    const OpPerf b = simulateConv(w, OpKind::WinogradF4, without);
    // Each core keeps its own L1 copy; the BU saves external
    // bandwidth, not on-chip capacity.
    EXPECT_DOUBLE_EQ(a.traffic.l1WrFm, b.traffic.l1WrFm);
}

} // namespace
} // namespace twq
