/**
 * @file
 * Winograd-aware training example: train the same compact network
 * as an FP32 baseline, a naive single-scale F4-int8 model, and a
 * tap-wise power-of-two F4-int8 model with knowledge distillation,
 * then compare test accuracy (the Table II story end to end).
 */

#include <cstdio>

#include "data/synthetic.hh"
#include "models/ablation_net.hh"
#include "nn/trainer.hh"

using namespace twq;

int
main()
{
    std::printf("Winograd-aware training on the synthetic dataset\n");
    std::printf("------------------------------------------------\n");

    // A hard instance (10 classes, heavy noise) so the quantization
    // configurations visibly separate.
    SyntheticConfig dcfg;
    dcfg.classes = 10;
    dcfg.imageSize = 12;
    dcfg.noise = 0.6;
    dcfg.seed = 55;
    const DataSplits data = makeSplits(400, 100, 200, dcfg);

    TrainConfig tcfg;
    tcfg.epochs = 5;
    tcfg.verbose = true;

    // 1. FP32 teacher.
    AblationConfig fp;
    fp.kind = ConvKind::WinogradF4;
    fp.channels = 6;
    fp.classes = 10;
    std::printf("\n[1/3] FP32 Winograd-F4 baseline\n");
    auto teacher = makeMiniResNet(fp);
    Trainer fp_tr(*teacher, tcfg);
    const double fp_acc = fp_tr.fit(data.train, data.val);
    std::printf("FP32 val accuracy: %.1f%%\n", fp_acc * 100.0);

    // 2. Naive single-scale int8 student.
    AblationConfig naive = fp;
    naive.wino.quantize = true;
    naive.wino.tapWise = false;
    std::printf("\n[2/3] naive single-scale F4 int8 "
                "(Winograd-aware)\n");
    auto naive_net = makeMiniResNet(naive);
    Trainer naive_tr(*naive_net, tcfg);
    naive_tr.fit(data.train, data.val);

    // 3. Tap-wise pow2 + KD student.
    AblationConfig tap = fp;
    tap.wino.quantize = true;
    tap.wino.tapWise = true;
    tap.wino.pow2 = true;
    tap.wino.learnScales = true;
    std::printf("\n[3/3] tap-wise pow2 F4 int8 + log2 training + "
                "KD\n");
    auto tap_net = makeMiniResNet(tap);
    TrainConfig kd_cfg = tcfg;
    kd_cfg.kdAlpha = 0.5;
    Trainer tap_tr(*tap_net, kd_cfg);
    tap_tr.setTeacher(teacher.get());
    tap_tr.fit(data.train, data.val);

    std::printf("\n==== summary (test set) ====\n");
    const double t_fp = fp_tr.evaluate(data.test);
    const double t_naive = naive_tr.evaluate(data.test);
    const double t_tap = tap_tr.evaluate(data.test);
    std::printf("FP32 baseline:            %5.1f%%\n", t_fp * 100.0);
    std::printf("single-scale F4 int8:     %5.1f%%  (%+.1f%%)\n",
                t_naive * 100.0, (t_naive - t_fp) * 100.0);
    std::printf("tap-wise pow2 F4 int8+KD: %5.1f%%  (%+.1f%%)\n",
                t_tap * 100.0, (t_tap - t_fp) * 100.0);
    std::printf("\nExpected shape (Table II): single-scale drops "
                "hard, tap-wise recovers\nmost of the FP32 "
                "accuracy.\n");
    return 0;
}
