#include "runtime/plan_cache.hh"

#include <cstdio>
#include <sstream>
#include <vector>

#include "gemm/gemm.hh"
#include "layout/kernels_f16.hh"
#include "layout/wino_blocked.hh"
#include "obs/metrics.hh"

namespace twq
{

namespace
{

constexpr const char *kMagic = "twq-plan-cache";
constexpr const char *kVersion = "v4";

/// Upper bound on a sane candidate-table length: engines × variants
/// is single digits today; anything larger is a corrupt line.
constexpr std::size_t kMaxTable = 64;

bool
variantFromName(const std::string &name, WinoVariant *out)
{
    for (WinoVariant v : kAllWinoVariants) {
        if (name == winoName(v)) {
            *out = v;
            return true;
        }
    }
    return false;
}

} // namespace

std::string
PlanCache::layerKey(const ConvLayerDesc &desc, std::size_t probeBatch,
                    bool quantized)
{
    std::ostringstream key;
    key << 'c' << desc.cin << 'o' << desc.cout << 'k' << desc.kernel
        << 's' << desc.stride << 'h' << desc.height << 'w'
        << desc.width << 'b' << probeBatch;
    if (quantized)
        key << "q8";
    return key.str();
}

std::string
PlanCache::signature()
{
    std::string sig = "sig=";
    sig += gemm::kernelName();
    sig += '/';
    sig += gemm::int8KernelName();
    sig += '/';
    sig += gemm::int8PairKernelName();
    sig += '/';
    sig += layoutKernelName();
    sig += '/';
    sig += layout::f16KernelName();
    return sig;
}

bool
PlanCache::lookup(const std::string &key, Decision *out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    *out = it->second;
    return true;
}

void
PlanCache::store(const std::string &key, const Decision &d)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = d;
    ++revision_;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

std::uint64_t
PlanCache::revision() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return revision_;
}

std::string
PlanCache::serialize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    out << kMagic << ' ' << kVersion << ' ' << signature() << '\n';
    for (const auto &[key, d] : entries_) {
        out << key << ' ' << convEngineName(d.engine) << ' '
            << winoName(d.variant) << ' ' << d.probeNs << ' '
            << d.cycles << ' ' << d.instructions << ' '
            << d.cacheRefs << ' ' << d.cacheMisses << ' '
            << d.inToBlockedNs << ' ' << d.inToNchwNs << ' '
            << d.outToBlockedNs << ' ' << d.outToNchwNs << ' '
            << d.table.size();
        for (const Cand &c : d.table)
            out << ' ' << convEngineName(c.engine) << ' '
                << winoName(c.variant) << ' ' << c.ns;
        out << '\n';
    }
    return out.str();
}

bool
PlanCache::deserialize(const std::string &text)
{
    // Parse fully before touching the cache: stale or malformed
    // input (an older format version, plans measured under a
    // different kernel table / CPU, a corrupted line) must not
    // disturb valid plans already measured in this process — the
    // cache may be shared across sessions, and a bad FILE is no
    // reason to throw away good MEMORY. Rejected input simply means
    // the affected layers re-probe.
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        return false;
    {
        std::istringstream header(line);
        std::string magic, version, sig;
        if (!(header >> magic >> version >> sig) ||
            magic != kMagic || version != kVersion ||
            sig != signature()) {
            // Stale or foreign plan file: the affected layers
            // re-probe. Counted so operators can spot a cache that
            // never survives restarts (e.g. a kernel-table change).
            obs::Registry::global()
                .counter("plan_cache.stale_reject")
                .inc();
            return false;
        }
    }
    std::map<std::string, Decision> parsed;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string key, engine, variant;
        Decision d;
        std::size_t nCand = 0;
        if (!(fields >> key >> engine >> variant >> d.probeNs >>
              d.cycles >> d.instructions >> d.cacheRefs >>
              d.cacheMisses >> d.inToBlockedNs >> d.inToNchwNs >>
              d.outToBlockedNs >> d.outToNchwNs >> nCand) ||
            nCand > kMaxTable ||
            !convEngineFromName(engine, &d.engine) ||
            !variantFromName(variant, &d.variant))
            return false;
        d.table.reserve(nCand);
        for (std::size_t i = 0; i < nCand; ++i) {
            Cand c;
            if (!(fields >> engine >> variant >> c.ns) ||
                !convEngineFromName(engine, &c.engine) ||
                !variantFromName(variant, &c.variant))
                return false;
            d.table.push_back(c);
        }
        parsed[key] = std::move(d);
    }
    // Merge (file entries win per key) so a shared in-memory cache
    // keeps measurements the file does not know about.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[key, d] : parsed)
        entries_[key] = d;
    ++revision_;
    return true;
}

bool
PlanCache::loadFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return deserialize(text);
}

bool
PlanCache::saveFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::string text = serialize();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace twq
