/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  -- the situation is the caller's fault (bad configuration,
 *             invalid arguments); exits with code 1.
 * panic()  -- the situation should never happen (library bug); aborts.
 * warn()   -- something works but not as well as it should.
 * inform() -- plain status output.
 */

#ifndef TWQ_COMMON_LOGGING_HH
#define TWQ_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace twq
{

/** Terminate with exit(1) after printing a user-error message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Abort after printing an internal-error message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stdout. */
void informImpl(const std::string &msg);

namespace detail
{

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace twq

#define twq_fatal(...) \
    ::twq::fatalImpl(__FILE__, __LINE__, ::twq::detail::concat(__VA_ARGS__))

#define twq_panic(...) \
    ::twq::panicImpl(__FILE__, __LINE__, ::twq::detail::concat(__VA_ARGS__))

#define twq_warn(...) \
    ::twq::warnImpl(__FILE__, __LINE__, ::twq::detail::concat(__VA_ARGS__))

#define twq_inform(...) \
    ::twq::informImpl(::twq::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds; failure is a bug. */
#define twq_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::twq::panicImpl(__FILE__, __LINE__,                           \
                ::twq::detail::concat("assertion failed: " #cond " ",     \
                                      ##__VA_ARGS__));                     \
        }                                                                  \
    } while (0)

#endif // TWQ_COMMON_LOGGING_HH
