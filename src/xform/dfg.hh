/**
 * @file
 * Flat dataflow-graph representation of a Winograd transformation
 * T^T s T (Section IV-B1 of the paper).
 *
 * The transform is unrolled into shift/add/subtract nodes only:
 * constant multiplications are decomposed into canonical signed-digit
 * (CSD) shift-and-add chains (e.g. 5a = (a << 2) + a), and nodes are
 * hash-consed so common subexpressions across output taps are shared
 * (CSE). Node counts are the area proxy of the engine explorer; the
 * graph can also be evaluated functionally to prove it computes the
 * same result as the matrix formula.
 */

#ifndef TWQ_XFORM_DFG_HH
#define TWQ_XFORM_DFG_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/rational.hh"
#include "tensor/matrix.hh"

namespace twq
{

/** Signed digits of the CSD representation, LSB first. */
std::vector<int> csdDigits(std::int64_t c);

/** Number of nonzero CSD digits (adders needed to multiply by c). */
std::size_t csdTermCount(std::int64_t c);

/** Hash-consed shift/add dataflow graph. */
class Dfg
{
  public:
    enum class Op
    {
        Input, ///< tile element (row, col)
        Add,   ///< a + b
        Sub,   ///< a - b
        Shift, ///< a << k (k may be negative for >>)
        Neg,   ///< -a
    };

    struct Node
    {
        Op op;
        int a = -1;
        int b = -1;
        int shift = 0;
        std::size_t row = 0;
        std::size_t col = 0;
    };

    static constexpr int kZero = -1; ///< sentinel node id for zero

    /** Get/create the input node for tile element (row, col). */
    int input(std::size_t row, std::size_t col);

    /** a + b with zero folding and hash-consing. */
    int add(int a, int b);

    /** a - b. */
    int sub(int a, int b);

    /** a << k (arithmetic; k < 0 is a right shift). */
    int shift(int a, int k);

    /** -a. */
    int neg(int a);

    /** a * c via CSD shift-and-add decomposition. */
    int mulConst(int a, std::int64_t c);

    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numAdders() const;   ///< Add + Sub + Neg nodes
    std::size_t numShifters() const; ///< Shift nodes
    std::size_t numInputs() const;

    /** Longest path (in adder stages) from any input to `node`. */
    std::size_t depth(int node) const;

    const Node &node(int id) const { return nodes_[id]; }

    /**
     * Evaluate a set of roots against an integer tile; kZero roots
     * evaluate to 0.
     */
    std::vector<std::int64_t> evaluate(const std::vector<int> &roots,
                                       const MatrixI64 &tile) const;

  private:
    int intern(const Node &n);

    std::vector<Node> nodes_;
    std::map<std::tuple<int, int, int, int, std::size_t, std::size_t>,
             int>
        cache_;
};

/** A DFG computing all taps of T^T s T. */
struct TransformDfg
{
    Dfg dfg;
    std::vector<int> outputs; ///< [wT * wT] root ids, row-major
    std::size_t outDim = 0;   ///< wT
    std::size_t inDim = 0;    ///< hT
    std::int64_t scale = 1;   ///< integer scale applied to T
};

/**
 * Build the DFG of T^T s T for a rational matrix T ([hT, wT]); T is
 * scaled by the LCM of its denominators, so outputs carry scale^2.
 */
TransformDfg buildTransformDfg(const Matrix<Rational> &t);

/** Evaluate a TransformDfg on a tile; returns a [wT, wT] matrix. */
MatrixI64 evaluateTransformDfg(const TransformDfg &t,
                               const MatrixI64 &tile);

} // namespace twq

#endif // TWQ_XFORM_DFG_HH
