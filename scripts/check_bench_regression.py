#!/usr/bin/env python3
"""Bench regression gate: compare a BENCH_runtime.json run to the
committed baseline and fail on a >15% regression in any gated row.

    check_bench_regression.py BASELINE CURRENT [--budget 0.15]

Only structurally meaningful rows are gated — single-layer wide-64
p50s (the Winograd/layout hot path, including the chain-DP vs argmin
pair) and the single-threaded serving loop's throughput — because
fully loaded multi-thread rows on shared CI runners are too noisy to
gate without flakes. Every gated row is printed, and when
GITHUB_STEP_SUMMARY is set the same table lands in the job summary.

The budget is deliberately loose (15%): this catches structural
regressions (a kernel losing its vector path, a plan flipping to a
slower engine), not single-digit drift. CI runners vary; the baseline
should be refreshed deliberately via scripts/update_bench_baseline
when a change legitimately moves the numbers.
"""

import argparse
import json
import os
import sys

# (config, metric, direction): direction +1 = higher is better.
GATES = [
    ("wide64-blocked", "p50_ms", -1),
    ("wide64-argmin", "p50_ms", -1),
    ("wide64-chain-dp", "p50_ms", -1),
    ("wide64-int8-blocked", "p50_ms", -1),
    ("net-loop-t1", "req_per_sec", +1),
]


def rows_by_config(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("results", []):
        # Last write wins; gated configs appear once per file.
        out[row["config"]] = row
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--budget", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    args = ap.parse_args()

    base = rows_by_config(args.baseline)
    cur = rows_by_config(args.current)

    lines = ["| row | metric | baseline | current | change | verdict |",
             "|---|---|---|---|---|---|"]
    failures = []
    for config, metric, direction in GATES:
        if config not in base:
            # A new row has no baseline yet: report, don't fail. The
            # next baseline refresh picks it up.
            lines.append(f"| {config} | {metric} | — | "
                         f"{cur.get(config, {}).get(metric, '—')} | — | "
                         f"no baseline |")
            continue
        if config not in cur:
            failures.append(f"{config}: missing from current run")
            lines.append(f"| {config} | {metric} | "
                         f"{base[config][metric]} | MISSING | — | FAIL |")
            continue
        b = float(base[config][metric])
        c = float(cur[config][metric])
        # Fractional regression, positive = worse.
        reg = (b - c) / b if direction > 0 else (c - b) / b
        verdict = "ok" if reg <= args.budget else "FAIL"
        if verdict == "FAIL":
            failures.append(
                f"{config} {metric}: {b:.4g} -> {c:.4g} "
                f"({reg * 100:+.1f}%, budget {args.budget * 100:.0f}%)")
        lines.append(f"| {config} | {metric} | {b:.4g} | {c:.4g} | "
                     f"{reg * 100:+.1f}% | {verdict} |")

    table = "\n".join(lines)
    print(table)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write("## Bench regression gate\n\n" + table + "\n")

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("\nbench regression gate: all rows within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
