#include "obs/trace.hh"

#ifndef TWQ_NO_OBS

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace twq::obs
{

namespace detail
{

/**
 * One span record. Every field is atomic so a flush racing a writer
 * reads defined values: the writer stores fields relaxed, then
 * publishes by a release store of the ring's head; the reader
 * acquires the head and only touches slots below it. A slot being
 * overwritten after wrap can tear *logically* (mixed old/new fields
 * read as one event) but never as a C++ data race; wrapped rings are
 * reported through droppedEvents() so a torn tail is visible.
 */
struct TraceEvent
{
    std::atomic<const char *> name{nullptr};
    std::atomic<std::uint64_t> t0{0};
    // dur == ~0 marks an instant event (traceInstant).
    std::atomic<std::uint64_t> dur{0};
    std::atomic<std::int64_t> arg{-1};
    // Request trace id sampled from the writer's TraceContext
    // (0 = not request-scoped).
    std::atomic<std::uint64_t> flow{0};
};

struct TraceBuffer
{
    std::vector<TraceEvent> ring;
    // Monotonic event count; slot = head % ring.size(). Published
    // with release so readers acquire fully-written slots.
    std::atomic<std::uint64_t> head{0};
    std::string lane;
    std::uint64_t tid = 0;
    std::atomic<bool> retired{false};
};

namespace
{

struct TraceState
{
    std::mutex mu;
    // shared_ptr keeps buffers alive for flush even after their
    // thread exits (thread_local owner drops its reference).
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    std::size_t capacity = std::size_t{1} << 15;
    std::uint64_t epochNs = 0;
    std::uint64_t nextTid = 1;
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

thread_local std::string pendingLane;

struct BufferOwner
{
    std::shared_ptr<TraceBuffer> buf;

    ~BufferOwner()
    {
        if (buf)
            buf->retired.store(true, std::memory_order_release);
    }
};

thread_local BufferOwner owner;

} // namespace

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

TraceBuffer &
threadBuffer()
{
    if (!owner.buf) {
        auto buf = std::make_shared<TraceBuffer>();
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        buf->ring = std::vector<TraceEvent>(s.capacity);
        buf->tid = s.nextTid++;
        buf->lane = pendingLane.empty()
                        ? "thread " + std::to_string(buf->tid)
                        : pendingLane;
        s.buffers.push_back(buf);
        owner.buf = std::move(buf);
    }
    return *owner.buf;
}

void
record(const char *name, std::uint64_t t0, std::uint64_t dur,
       std::int64_t arg)
{
    TraceBuffer &buf = threadBuffer();
    const std::uint64_t h = buf.head.load(std::memory_order_relaxed);
    TraceEvent &ev = buf.ring[h % buf.ring.size()];
    ev.name.store(name, std::memory_order_relaxed);
    ev.t0.store(t0, std::memory_order_relaxed);
    ev.dur.store(dur, std::memory_order_relaxed);
    ev.arg.store(arg, std::memory_order_relaxed);
    ev.flow.store(tlsTraceId, std::memory_order_relaxed);
    buf.head.store(h + 1, std::memory_order_release);
}

} // namespace detail

std::uint64_t
mintTraceId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

void
setThreadLane(const char *name)
{
    detail::pendingLane = name;
    if (detail::owner.buf) {
        std::lock_guard<std::mutex> lock(detail::state().mu);
        detail::owner.buf->lane = name;
    }
}

void
setThreadLane(const char *name, std::size_t index)
{
    const std::string lane =
        std::string(name) + " " + std::to_string(index);
    detail::pendingLane = lane;
    if (detail::owner.buf) {
        std::lock_guard<std::mutex> lock(detail::state().mu);
        detail::owner.buf->lane = lane;
    }
}

TraceCollector &
TraceCollector::global()
{
    static TraceCollector c;
    return c;
}

void
TraceCollector::enable(std::size_t eventsPerThread)
{
    detail::TraceState &s = detail::state();
    {
        std::lock_guard<std::mutex> lock(s.mu);
        s.capacity = std::max<std::size_t>(eventsPerThread, 64);
        if (s.epochNs == 0)
            s.epochNs = detail::nowNs();
    }
    detail::traceOn.store(true, std::memory_order_relaxed);
}

void
TraceCollector::disable()
{
    detail::traceOn.store(false, std::memory_order_relaxed);
}

namespace
{

struct FlushedEvent
{
    const char *name;
    std::uint64_t t0;
    std::uint64_t dur;
    std::int64_t arg;
    std::uint64_t tid;
    std::uint64_t flow;
};

/**
 * Read every ring. Caller must have cleared traceOn first; in-flight
 * spans that started before disable() may still land one final slot,
 * which the acquire-load of head either includes fully or not at all.
 */
void
collect(std::vector<FlushedEvent> &out,
        std::vector<std::pair<std::uint64_t, std::string>> &lanes,
        std::uint64_t &dropped)
{
    detail::TraceState &s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &buf : s.buffers) {
        const std::uint64_t head =
            buf->head.load(std::memory_order_acquire);
        const std::uint64_t cap = buf->ring.size();
        if (head > cap)
            dropped += head - cap;
        const std::uint64_t begin = head > cap ? head - cap : 0;
        for (std::uint64_t i = begin; i < head; ++i) {
            const detail::TraceEvent &ev = buf->ring[i % cap];
            const char *name =
                ev.name.load(std::memory_order_relaxed);
            if (!name)
                continue;
            out.push_back(
                {name, ev.t0.load(std::memory_order_relaxed),
                 ev.dur.load(std::memory_order_relaxed),
                 ev.arg.load(std::memory_order_relaxed), buf->tid,
                 ev.flow.load(std::memory_order_relaxed)});
        }
        lanes.emplace_back(buf->tid, buf->lane);
    }
}

void
appendJsonEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

} // namespace

std::string
TraceCollector::json()
{
    disable();
    std::vector<FlushedEvent> events;
    std::vector<std::pair<std::uint64_t, std::string>> lanes;
    std::uint64_t dropped = 0;
    collect(events, lanes, dropped);

    const std::uint64_t epoch = detail::state().epochNs;
    std::string out;
    out.reserve(events.size() * 96 + 256);
    out += "{\"traceEvents\":[";
    bool first = true;
    for (const auto &[tid, lane] : lanes) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
               "\"tid\":";
        out += std::to_string(tid);
        out += ",\"args\":{\"name\":\"";
        appendJsonEscaped(out, lane.c_str());
        out += "\"}}";
    }
    char num[64];
    for (const FlushedEvent &ev : events) {
        if (!first)
            out += ',';
        first = false;
        const bool instant = ev.dur == ~std::uint64_t{0};
        const double tsUs =
            static_cast<double>(ev.t0 - std::min(ev.t0, epoch)) *
            1e-3;
        out += instant ? "{\"ph\":\"i\",\"s\":\"t\",\"name\":\""
                       : "{\"ph\":\"X\",\"name\":\"";
        appendJsonEscaped(out, ev.name);
        out += "\",\"pid\":1,\"tid\":";
        out += std::to_string(ev.tid);
        std::snprintf(num, sizeof(num), ",\"ts\":%.3f", tsUs);
        out += num;
        if (!instant) {
            std::snprintf(num, sizeof(num), ",\"dur\":%.3f",
                          static_cast<double>(ev.dur) * 1e-3);
            out += num;
        }
        if (ev.arg >= 0 || ev.flow != 0) {
            out += ",\"args\":{";
            bool firstArg = true;
            if (ev.arg >= 0) {
                out += "\"arg\":";
                out += std::to_string(ev.arg);
                firstArg = false;
            }
            if (ev.flow != 0) {
                if (!firstArg)
                    out += ',';
                out += "\"trace_id\":";
                out += std::to_string(ev.flow);
            }
            out += '}';
        }
        out += '}';
    }
    // Request flows: each trace id's chronological span sequence
    // becomes a Chrome flow (ph s -> t... -> f with a shared id), so
    // Perfetto draws one arrowed path per request across thread
    // lanes. A flow event binds to the slice that encloses its ts on
    // the same tid, so each is pinned just inside its span's start.
    std::map<std::uint64_t, std::vector<const FlushedEvent *>> flows;
    for (const FlushedEvent &ev : events)
        if (ev.flow != 0 && ev.dur != ~std::uint64_t{0})
            flows[ev.flow].push_back(&ev);
    for (auto &[id, evs] : flows) {
        std::sort(evs.begin(), evs.end(),
                  [](const FlushedEvent *a, const FlushedEvent *b) {
                      return a->t0 < b->t0;
                  });
        for (std::size_t i = 0; i < evs.size(); ++i) {
            const FlushedEvent &ev = *evs[i];
            if (!first)
                out += ',';
            first = false;
            const bool last = i + 1 == evs.size();
            const char *ph = i == 0 ? "s" : (last ? "f" : "t");
            const double tsUs =
                static_cast<double>(ev.t0 - std::min(ev.t0, epoch)) *
                    1e-3 +
                std::min(static_cast<double>(ev.dur) * 1e-3, 0.5) *
                    0.5;
            out += "{\"ph\":\"";
            out += ph;
            out += "\",\"cat\":\"request\",\"name\":\"req\",\"id\":";
            out += std::to_string(id);
            out += ",\"pid\":1,\"tid\":";
            out += std::to_string(ev.tid);
            std::snprintf(num, sizeof(num), ",\"ts\":%.3f", tsUs);
            out += num;
            if (last)
                out += ",\"bp\":\"e\"";
            out += '}';
        }
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

bool
TraceCollector::writeJson(const std::string &path)
{
    const std::string doc = json();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        twq_warn("trace: cannot open '", path, "' for writing; ",
                 doc.size(), " bytes of trace dropped");
        return false;
    }
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (!ok)
        twq_warn("trace: short write to '", path, "'");
    return ok;
}

std::map<std::string, StageTotal>
TraceCollector::aggregate()
{
    disable();
    std::vector<FlushedEvent> events;
    std::vector<std::pair<std::uint64_t, std::string>> lanes;
    std::uint64_t dropped = 0;
    collect(events, lanes, dropped);

    std::map<std::string, StageTotal> totals;
    for (const FlushedEvent &ev : events) {
        if (ev.dur == ~std::uint64_t{0})
            continue;
        StageTotal &t = totals[ev.name];
        ++t.count;
        t.totalNs += ev.dur;
    }
    return totals;
}

void
TraceCollector::reset()
{
    disable();
    detail::TraceState &s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto &buf : s.buffers)
        buf->head.store(0, std::memory_order_release);
    // Drop retired threads' buffers entirely; live threads keep
    // theirs (their thread_local still points at them).
    s.buffers.erase(
        std::remove_if(s.buffers.begin(), s.buffers.end(),
                       [](const auto &b) {
                           return b->retired.load(
                               std::memory_order_acquire);
                       }),
        s.buffers.end());
    s.epochNs = 0;
}

std::uint64_t
TraceCollector::droppedEvents() const
{
    // Resolved before taking the trace lock so the registry mutex
    // never nests inside it.
    static Gauge &gauge =
        Registry::global().gauge("trace.dropped_events");
    detail::TraceState &s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    std::uint64_t dropped = 0;
    for (const auto &buf : s.buffers) {
        const std::uint64_t head =
            buf->head.load(std::memory_order_acquire);
        if (head > buf->ring.size())
            dropped += head - buf->ring.size();
    }
    // Surface ring truncation in the metrics registry: every reader
    // (a /metrics scrape included) refreshes the gauge.
    gauge.set(static_cast<std::int64_t>(dropped));
    // And in the log: growing drops mean the rings are undersized for
    // the workload (SessionConfig::traceRingSlots). twq_warn is
    // rate-limited per call site, so a hot scrape loop cannot spam.
    static std::atomic<std::uint64_t> lastWarned{0};
    std::uint64_t prev = lastWarned.load(std::memory_order_relaxed);
    if (dropped > prev &&
        lastWarned.compare_exchange_strong(prev, dropped,
                                           std::memory_order_relaxed))
        twq_warn("trace: ", dropped,
                 " events overwritten by ring wrap-around; raise the "
                 "per-thread ring capacity "
                 "(SessionConfig::traceRingSlots or "
                 "TraceCollector::enable)");
    return dropped;
}

} // namespace twq::obs

#endif // TWQ_NO_OBS
