#include "winograd/matrices.hh"

#include <numeric>

#include "common/logging.hh"

namespace twq
{

namespace
{

/** Shorthand for rational literals in the matrix tables. */
Rational
rat(std::int64_t n, std::int64_t d = 1)
{
    return Rational(n, d);
}

Matrix<Rational>
makeBTF2()
{
    return Matrix<Rational>{
        {rat(1), rat(0), rat(-1), rat(0)},
        {rat(0), rat(1), rat(1), rat(0)},
        {rat(0), rat(-1), rat(1), rat(0)},
        {rat(0), rat(1), rat(0), rat(-1)},
    };
}

Matrix<Rational>
makeGF2()
{
    return Matrix<Rational>{
        {rat(1), rat(0), rat(0)},
        {rat(1, 2), rat(1, 2), rat(1, 2)},
        {rat(1, 2), rat(-1, 2), rat(1, 2)},
        {rat(0), rat(0), rat(1)},
    };
}

Matrix<Rational>
makeATF2()
{
    return Matrix<Rational>{
        {rat(1), rat(1), rat(1), rat(0)},
        {rat(0), rat(1), rat(-1), rat(-1)},
    };
}

Matrix<Rational>
makeBTF4()
{
    return Matrix<Rational>{
        {rat(4), rat(0), rat(-5), rat(0), rat(1), rat(0)},
        {rat(0), rat(-4), rat(-4), rat(1), rat(1), rat(0)},
        {rat(0), rat(4), rat(-4), rat(-1), rat(1), rat(0)},
        {rat(0), rat(-2), rat(-1), rat(2), rat(1), rat(0)},
        {rat(0), rat(2), rat(-1), rat(-2), rat(1), rat(0)},
        {rat(0), rat(4), rat(0), rat(-5), rat(0), rat(1)},
    };
}

Matrix<Rational>
makeGF4()
{
    // The paper writes G = (1/3) * [[3/4,0,0], [-1/2,-1/2,-1/2],
    // [-1/2,1/2,-1/2], [1/8,1/4,1/2], [1/8,-1/4,1/2], [0,0,3]].
    return Matrix<Rational>{
        {rat(1, 4), rat(0), rat(0)},
        {rat(-1, 6), rat(-1, 6), rat(-1, 6)},
        {rat(-1, 6), rat(1, 6), rat(-1, 6)},
        {rat(1, 24), rat(1, 12), rat(1, 6)},
        {rat(1, 24), rat(-1, 12), rat(1, 6)},
        {rat(0), rat(0), rat(1)},
    };
}

Matrix<Rational>
makeATF4()
{
    return Matrix<Rational>{
        {rat(1), rat(1), rat(1), rat(1), rat(1), rat(0)},
        {rat(0), rat(1), rat(-1), rat(2), rat(-2), rat(0)},
        {rat(0), rat(1), rat(1), rat(4), rat(4), rat(0)},
        {rat(0), rat(1), rat(-1), rat(8), rat(-8), rat(1)},
    };
}

// F(6x6, 3x3) from the interpolation points {0, 1, -1, 2, -2, 1/2,
// -1/2} plus the point at infinity — the Lavin parameterization cuDNN
// and wincnn popularized. Unlike F2/F4, B^T (quarters) and A^T
// (halves down to 1/32) are not integer, which is why the quantized
// engines reject F6 (see winoIntegerTransforms / bitwidth.hh).

Matrix<Rational>
makeBTF6()
{
    return Matrix<Rational>{
        {rat(1), rat(0), rat(-21, 4), rat(0), rat(21, 4), rat(0),
         rat(-1), rat(0)},
        {rat(0), rat(1), rat(1), rat(-17, 4), rat(-17, 4), rat(1),
         rat(1), rat(0)},
        {rat(0), rat(-1), rat(1), rat(17, 4), rat(-17, 4), rat(-1),
         rat(1), rat(0)},
        {rat(0), rat(1, 2), rat(1, 4), rat(-5, 2), rat(-5, 4), rat(2),
         rat(1), rat(0)},
        {rat(0), rat(-1, 2), rat(1, 4), rat(5, 2), rat(-5, 4),
         rat(-2), rat(1), rat(0)},
        {rat(0), rat(2), rat(4), rat(-5, 2), rat(-5), rat(1, 2),
         rat(1), rat(0)},
        {rat(0), rat(-2), rat(4), rat(5, 2), rat(-5), rat(-1, 2),
         rat(1), rat(0)},
        {rat(0), rat(-1), rat(0), rat(21, 4), rat(0), rat(-21, 4),
         rat(0), rat(1)},
    };
}

Matrix<Rational>
makeGF6()
{
    // Row at point p is scale * (1, p, p^2).
    return Matrix<Rational>{
        {rat(1), rat(0), rat(0)},
        {rat(-2, 9), rat(-2, 9), rat(-2, 9)},
        {rat(-2, 9), rat(2, 9), rat(-2, 9)},
        {rat(1, 90), rat(1, 45), rat(2, 45)},
        {rat(1, 90), rat(-1, 45), rat(2, 45)},
        {rat(32, 45), rat(16, 45), rat(8, 45)},
        {rat(32, 45), rat(-16, 45), rat(8, 45)},
        {rat(0), rat(0), rat(1)},
    };
}

Matrix<Rational>
makeATF6()
{
    // Column at point p carries the powers p^0 .. p^5.
    return Matrix<Rational>{
        {rat(1), rat(1), rat(1), rat(1), rat(1), rat(1), rat(1),
         rat(0)},
        {rat(0), rat(1), rat(-1), rat(2), rat(-2), rat(1, 2),
         rat(-1, 2), rat(0)},
        {rat(0), rat(1), rat(1), rat(4), rat(4), rat(1, 4), rat(1, 4),
         rat(0)},
        {rat(0), rat(1), rat(-1), rat(8), rat(-8), rat(1, 8),
         rat(-1, 8), rat(0)},
        {rat(0), rat(1), rat(1), rat(16), rat(16), rat(1, 16),
         rat(1, 16), rat(0)},
        {rat(0), rat(1), rat(-1), rat(32), rat(-32), rat(1, 32),
         rat(-1, 32), rat(1)},
    };
}

} // namespace

WinoSpec
winoSpec(WinoVariant v)
{
    switch (v) {
      case WinoVariant::F2:
        return {2, 3, 4};
      case WinoVariant::F4:
        return {4, 3, 6};
      case WinoVariant::F6:
        return {6, 3, 8};
    }
    twq_panic("unknown WinoVariant");
}

const char *
winoName(WinoVariant v)
{
    switch (v) {
      case WinoVariant::F2:
        return "F2";
      case WinoVariant::F4:
        return "F4";
      case WinoVariant::F6:
        return "F6";
    }
    twq_panic("unknown WinoVariant");
}

bool
winoIntegerTransforms(WinoVariant v)
{
    const Matrix<Rational> &bt = winoBT(v);
    const Matrix<Rational> &at = winoAT(v);
    return denominatorLcm(bt) == 1 && denominatorLcm(at) == 1;
}

const Matrix<Rational> &
winoBT(WinoVariant v)
{
    static const Matrix<Rational> f2 = makeBTF2();
    static const Matrix<Rational> f4 = makeBTF4();
    static const Matrix<Rational> f6 = makeBTF6();
    switch (v) {
      case WinoVariant::F2:
        return f2;
      case WinoVariant::F4:
        return f4;
      case WinoVariant::F6:
        return f6;
    }
    twq_panic("unknown WinoVariant");
}

const Matrix<Rational> &
winoG(WinoVariant v)
{
    static const Matrix<Rational> f2 = makeGF2();
    static const Matrix<Rational> f4 = makeGF4();
    static const Matrix<Rational> f6 = makeGF6();
    switch (v) {
      case WinoVariant::F2:
        return f2;
      case WinoVariant::F4:
        return f4;
      case WinoVariant::F6:
        return f6;
    }
    twq_panic("unknown WinoVariant");
}

const Matrix<Rational> &
winoAT(WinoVariant v)
{
    static const Matrix<Rational> f2 = makeATF2();
    static const Matrix<Rational> f4 = makeATF4();
    static const Matrix<Rational> f6 = makeATF6();
    switch (v) {
      case WinoVariant::F2:
        return f2;
      case WinoVariant::F4:
        return f4;
      case WinoVariant::F6:
        return f6;
    }
    twq_panic("unknown WinoVariant");
}

namespace
{

MatrixD
toDouble(const Matrix<Rational> &m)
{
    return m.map<double>([](const Rational &r) { return r.toDouble(); });
}

} // namespace

MatrixD
winoBTd(WinoVariant v)
{
    return toDouble(winoBT(v));
}

MatrixD
winoGd(WinoVariant v)
{
    return toDouble(winoG(v));
}

MatrixD
winoATd(WinoVariant v)
{
    return toDouble(winoAT(v));
}

std::int64_t
denominatorLcm(const Matrix<Rational> &m)
{
    std::int64_t l = 1;
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            l = std::lcm(l, m(r, c).den());
    return l;
}

MatrixI64
scaledInteger(const Matrix<Rational> &m, std::int64_t scale)
{
    return m.map<std::int64_t>([scale](const Rational &r) {
        return (r * Rational(scale)).toInteger();
    });
}

} // namespace twq
