/**
 * @file
 * Minimal parallel-execution vocabulary for sharded GEMM work.
 *
 * The GEMM layer must not depend on the serving runtime, yet the
 * runtime wants to shard the t*t independent per-tap products (and
 * im2col's output-channel blocks) across its worker pool. These two
 * interfaces are the seam: the runtime implements them (PoolRunner
 * over its ThreadPool, ArenaPackPool over per-worker ScratchArenas)
 * and hands them down through ConvBackend::run; kernels and lowering
 * code only ever see the abstractions.
 */

#ifndef TWQ_GEMM_PARALLEL_HH
#define TWQ_GEMM_PARALLEL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace twq
{
namespace gemm
{

/**
 * Executes a batch of independent tasks, with the calling thread
 * participating — the caller can always finish the whole batch alone,
 * so a runner backed by a busy pool can never deadlock.
 */
class ParallelRunner
{
  public:
    virtual ~ParallelRunner() = default;

    /** Helper threads that may join in beyond the calling thread. */
    virtual std::size_t workers() const = 0;

    /**
     * Upper bound (exclusive) on the lane ids passed to task
     * functions. A lane is unique per concurrently-executing thread,
     * so per-lane resources (pack buffers) need no locking.
     */
    virtual std::size_t lanes() const = 0;

    /**
     * Run fn(task, lane) for every task in [0, n); blocks until all
     * tasks have completed. Tasks must be independent.
     */
    virtual void run(std::size_t n,
                     const std::function<void(std::size_t task,
                                              std::size_t lane)> &fn) = 0;
};

/**
 * Per-lane pack-buffer provider: each call returns a buffer of
 * gemm::packSize() elements private to `lane`. Backed by ScratchArena
 * slots in the serving runtime so sharded GEMMs stay allocation-free;
 * a null PackPool makes kernels fall back to thread-local storage.
 */
class PackPool
{
  public:
    virtual ~PackPool() = default;

    virtual double *packD(std::size_t lane) = 0;
    virtual std::int64_t *packI64(std::size_t lane) = 0;
    virtual std::int8_t *packI8(std::size_t lane) = 0;
};

/**
 * The lane's pack buffer of element type T, or null (thread-local
 * fallback) with no pool or no pool storage for T. Only valid under a
 * live runner — each lane is then owned by exactly one executing
 * thread; a serial caller must pass a null pool instead (two workers
 * falling back to the serial path concurrently would otherwise share
 * lane 0's buffer).
 */
template <typename T>
inline T *
lanePack(PackPool *packs, std::size_t lane)
{
    if (!packs)
        return nullptr;
    if constexpr (std::is_same_v<T, double>)
        return packs->packD(lane);
    else if constexpr (std::is_same_v<T, std::int64_t>)
        return packs->packI64(lane);
    else if constexpr (std::is_same_v<T, std::int8_t>)
        return packs->packI8(lane);
    else
        return nullptr;
}

/**
 * Run fn(task, lane) for every task in [0, n) — across `runner` when
 * provided, serially otherwise. CRITICAL lane rule: with a runner,
 * every task reports a runner-assigned lane (even for n == 1, where
 * the runner reports its caller lane) — a hardcoded lane 0 here would
 * race another thread legitimately owning lane 0's pack buffer.
 * Without a runner the serial loop reports lane 0, and the caller
 * must have nulled its PackPool (see lanePack).
 */
inline void
runTasks(ParallelRunner *runner, std::size_t n,
         const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (runner) {
        runner->run(n, fn);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        fn(i, 0);
}

/**
 * How many column blocks to split each member of a family of `tasks`
 * independent [m, k] x [k, cols] products into, so the task grid
 * (tasks * shards) keeps every runner lane busy. Sixteen F2 taps on a
 * many-core host under-fill the pool at tap granularity alone — the
 * ROADMAP case this fixes — while a task count already >= 2x the
 * lanes stays unsplit (finer shards would only pay fixed overhead).
 * Each block is at least `minCols` wide so tiny P dimensions are not
 * shredded below the micro-kernel's efficient width. Splitting is
 * safe for any blocked-core GEMM: every output element accumulates
 * its own ascending-k sum, so column blocks are bit-identical to the
 * whole product.
 */
inline std::size_t
colShards(ParallelRunner *runner, std::size_t tasks, std::size_t cols,
          std::size_t minCols = 128)
{
    if (!runner || cols <= minCols)
        return 1;
    const std::size_t lanes = runner->lanes();
    if (tasks >= 2 * lanes)
        return 1;
    const std::size_t want = (2 * lanes + tasks - 1) / tasks;
    const std::size_t most = (cols + minCols - 1) / minCols;
    return std::max<std::size_t>(1, std::min(want, most));
}

/**
 * Run fn(tap, j0, jn, lane) over the task grid of `taps` independent
 * [m, k] x [k, cols] products, each split into column blocks per
 * colShards() with the block width rounded up to `granularity` (the
 * kernel's column tile). This is the one place the tap x P-block grid
 * is derived and decoded — the NCHW and blocked Winograd tap GEMMs
 * and the integer tap GEMM all shard through it.
 */
inline void
runTapColBlocks(
    ParallelRunner *runner, std::size_t taps, std::size_t cols,
    std::size_t granularity,
    const std::function<void(std::size_t tap, std::size_t j0,
                             std::size_t jn, std::size_t lane)> &fn)
{
    if (cols == 0)
        return;
    const std::size_t shards = colShards(runner, taps, cols);
    const std::size_t blk = ((cols + shards - 1) / shards +
                             granularity - 1) /
                            granularity * granularity;
    const std::size_t perTap = (cols + blk - 1) / blk;
    runTasks(runner, taps * perTap,
             [&](std::size_t task, std::size_t lane) {
                 const std::size_t k = task / perTap;
                 const std::size_t j0 = (task % perTap) * blk;
                 fn(k, j0, std::min(blk, cols - j0), lane);
             });
}

/**
 * Shard `rows` into contiguous row blocks of at least `minBlock` and
 * run fn(r0, nrows, lane) for each — across `runner` when provided
 * (about two blocks per lane, so a straggling lane can steal work),
 * serially on lane 0 otherwise. Used by the im2col backends to split
 * a GEMM over output-channel blocks; any split yields identical
 * results because every output row is the same computation.
 */
inline void
runRowBlocks(ParallelRunner *runner, std::size_t rows,
             std::size_t minBlock,
             const std::function<void(std::size_t r0, std::size_t nrows,
                                      std::size_t lane)> &fn)
{
    if (rows == 0)
        return;
    const std::size_t lanes = runner ? runner->lanes() : 1;
    const std::size_t blk =
        runner ? std::max(minBlock,
                          (rows + 2 * lanes - 1) / (2 * lanes))
               : rows;
    const std::size_t nblocks = (rows + blk - 1) / blk;
    runTasks(runner, nblocks, [&](std::size_t bi, std::size_t lane) {
        const std::size_t r0 = bi * blk;
        fn(r0, std::min(blk, rows - r0), lane);
    });
}

} // namespace gemm
} // namespace twq

#endif // TWQ_GEMM_PARALLEL_HH
